//===- Parser.cpp - MiniC recursive-descent parser ---------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <sstream>

using namespace symmerge;
using namespace symmerge::ast;

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Line << ':' << Col << ": " << Message;
  return OS.str();
}

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diagnostic> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  ProgramAst run() {
    ProgramAst P;
    while (!at(TokKind::End)) {
      if (at(TokKind::Error)) {
        error(cur().Text);
        advance();
        continue;
      }
      parseFunction(P);
      if (Panicking)
        recoverToTopLevel();
    }
    return P;
  }

private:
  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }

  void error(const std::string &Msg) {
    if (!Panicking)
      Diags.push_back({cur().Line, cur().Col, Msg});
    Panicking = true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K)) {
      Panicking = false;
      return true;
    }
    std::ostringstream OS;
    OS << "expected " << tokKindName(K) << ' ' << Context << ", found "
       << tokKindName(cur().Kind);
    error(OS.str());
    return false;
  }

  void recoverToTopLevel() {
    // Skip to a plausible function start: a type keyword at brace depth 0.
    int Depth = 0;
    while (!at(TokKind::End)) {
      if (at(TokKind::LBrace))
        ++Depth;
      if (at(TokKind::RBrace)) {
        --Depth;
        advance();
        if (Depth <= 0)
          break;
        continue;
      }
      if (Depth <= 0 &&
          (at(TokKind::KwInt) || at(TokKind::KwChar) || at(TokKind::KwVoid)))
        break;
      advance();
    }
    Panicking = false;
  }

  void recoverToStatement() {
    while (!at(TokKind::End) && !at(TokKind::Semicolon) &&
           !at(TokKind::RBrace))
      advance();
    accept(TokKind::Semicolon);
    Panicking = false;
  }

  //===------------------------------------------------------------------===
  // Declarations
  //===------------------------------------------------------------------===

  void parseFunction(ProgramAst &P) {
    FuncDecl F;
    F.Line = cur().Line;
    F.Col = cur().Col;
    if (accept(TokKind::KwVoid))
      F.RetKind = FuncDecl::Ret::Void;
    else if (accept(TokKind::KwInt))
      F.RetKind = FuncDecl::Ret::Int;
    else if (accept(TokKind::KwChar))
      F.RetKind = FuncDecl::Ret::Char;
    else {
      error("expected a function definition ('void', 'int', or 'char')");
      advance();
      return;
    }
    if (!at(TokKind::Identifier)) {
      error("expected function name");
      return;
    }
    F.Name = cur().Text;
    advance();
    if (!expect(TokKind::LParen, "after function name"))
      return;
    if (!at(TokKind::RParen)) {
      do {
        ParamDecl PD;
        PD.Line = cur().Line;
        PD.Col = cur().Col;
        if (accept(TokKind::KwInt))
          PD.IsChar = false;
        else if (accept(TokKind::KwChar))
          PD.IsChar = true;
        else {
          error("expected parameter type");
          return;
        }
        if (!at(TokKind::Identifier)) {
          error("expected parameter name");
          return;
        }
        PD.Name = cur().Text;
        advance();
        if (accept(TokKind::LBracket)) {
          PD.IsArray = true;
          if (!expect(TokKind::RBracket, "in array parameter"))
            return;
        }
        F.Params.push_back(std::move(PD));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "after parameters"))
      return;
    if (!at(TokKind::LBrace)) {
      error("expected function body");
      return;
    }
    F.Body = parseBlock();
    P.Funcs.push_back(std::move(F));
  }

  //===------------------------------------------------------------------===
  // Statements
  //===------------------------------------------------------------------===

  StmtPtr makeStmt(Stmt::Kind K) {
    auto S = std::make_unique<Stmt>();
    S->K = K;
    S->Line = cur().Line;
    S->Col = cur().Col;
    return S;
  }

  StmtPtr parseBlock() {
    auto S = makeStmt(Stmt::Kind::Block);
    expect(TokKind::LBrace, "to open a block");
    while (!at(TokKind::RBrace) && !at(TokKind::End)) {
      StmtPtr Inner = parseStatement();
      if (Panicking)
        recoverToStatement();
      if (Inner)
        S->Stmts.push_back(std::move(Inner));
    }
    expect(TokKind::RBrace, "to close a block");
    return S;
  }

  StmtPtr parseStatement() {
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::Semicolon: {
      auto S = makeStmt(Stmt::Kind::Empty);
      advance();
      return S;
    }
    case TokKind::KwInt:
    case TokKind::KwChar: {
      StmtPtr S = parseVarDecl();
      expect(TokKind::Semicolon, "after variable declaration");
      return S;
    }
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwReturn: {
      auto S = makeStmt(Stmt::Kind::Return);
      advance();
      if (!at(TokKind::Semicolon))
        S->Init = parseExpr();
      expect(TokKind::Semicolon, "after return");
      return S;
    }
    case TokKind::KwBreak: {
      auto S = makeStmt(Stmt::Kind::Break);
      advance();
      expect(TokKind::Semicolon, "after break");
      return S;
    }
    case TokKind::KwContinue: {
      auto S = makeStmt(Stmt::Kind::Continue);
      advance();
      expect(TokKind::Semicolon, "after continue");
      return S;
    }
    case TokKind::KwAssert: {
      auto S = makeStmt(Stmt::Kind::Assert);
      advance();
      expect(TokKind::LParen, "after 'assert'");
      S->Cond = parseExpr();
      if (accept(TokKind::Comma)) {
        if (at(TokKind::StringLiteral)) {
          S->Message = cur().Text;
          advance();
        } else {
          error("expected a string literal as the assert message");
        }
      }
      expect(TokKind::RParen, "after assert condition");
      expect(TokKind::Semicolon, "after assert");
      return S;
    }
    case TokKind::KwAssume: {
      auto S = makeStmt(Stmt::Kind::Assume);
      advance();
      expect(TokKind::LParen, "after 'assume'");
      S->Cond = parseExpr();
      expect(TokKind::RParen, "after assume condition");
      expect(TokKind::Semicolon, "after assume");
      return S;
    }
    case TokKind::KwHalt: {
      auto S = makeStmt(Stmt::Kind::Halt);
      advance();
      expect(TokKind::LParen, "after 'halt'");
      expect(TokKind::RParen, "after 'halt('");
      expect(TokKind::Semicolon, "after halt()");
      return S;
    }
    case TokKind::KwMakeSymbolic: {
      auto S = makeStmt(Stmt::Kind::MakeSymbolic);
      advance();
      expect(TokKind::LParen, "after 'make_symbolic'");
      if (at(TokKind::Identifier)) {
        S->Name = cur().Text;
        advance();
      } else {
        error("expected a variable name in make_symbolic");
      }
      if (accept(TokKind::Comma)) {
        if (at(TokKind::StringLiteral)) {
          S->Message = cur().Text;
          advance();
        } else {
          error("expected a string literal as the symbolic name");
        }
      }
      if (S->Message.empty())
        S->Message = S->Name;
      expect(TokKind::RParen, "after make_symbolic");
      expect(TokKind::Semicolon, "after make_symbolic");
      return S;
    }
    case TokKind::KwPrint: {
      auto S = makeStmt(Stmt::Kind::Print);
      advance();
      expect(TokKind::LParen, "after 'print'");
      S->Init = parseExpr();
      expect(TokKind::RParen, "after print argument");
      expect(TokKind::Semicolon, "after print");
      return S;
    }
    default:
      return parseSimpleStatement(/*RequireSemicolon=*/true);
    }
  }

  StmtPtr parseVarDecl() {
    auto S = makeStmt(Stmt::Kind::VarDecl);
    S->IsChar = at(TokKind::KwChar);
    advance(); // Type keyword.
    if (!at(TokKind::Identifier)) {
      error("expected variable name");
      return S;
    }
    S->Name = cur().Text;
    advance();
    if (accept(TokKind::LBracket)) {
      if (at(TokKind::IntLiteral)) {
        S->ArraySize = static_cast<int64_t>(cur().IntValue);
        advance();
      } else {
        error("array size must be an integer literal");
      }
      expect(TokKind::RBracket, "after array size");
    } else if (accept(TokKind::Assign)) {
      S->Init = parseExpr();
    }
    return S;
  }

  StmtPtr parseIf() {
    auto S = makeStmt(Stmt::Kind::If);
    advance();
    expect(TokKind::LParen, "after 'if'");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after if condition");
    S->Then = parseStatement();
    if (accept(TokKind::KwElse))
      S->Else = parseStatement();
    return S;
  }

  StmtPtr parseWhile() {
    auto S = makeStmt(Stmt::Kind::While);
    advance();
    expect(TokKind::LParen, "after 'while'");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after while condition");
    S->Body = parseStatement();
    return S;
  }

  StmtPtr parseFor() {
    auto S = makeStmt(Stmt::Kind::For);
    advance();
    expect(TokKind::LParen, "after 'for'");
    if (!at(TokKind::Semicolon)) {
      if (at(TokKind::KwInt) || at(TokKind::KwChar))
        S->ForInit = parseVarDecl();
      else
        S->ForInit = parseSimpleStatement(/*RequireSemicolon=*/false);
    }
    expect(TokKind::Semicolon, "after for initializer");
    if (!at(TokKind::Semicolon))
      S->Cond = parseExpr();
    expect(TokKind::Semicolon, "after for condition");
    if (!at(TokKind::RParen))
      S->ForStep = parseSimpleStatement(/*RequireSemicolon=*/false);
    expect(TokKind::RParen, "after for step");
    S->Body = parseStatement();
    return S;
  }

  /// Assignment, increment/decrement, or expression statement.
  StmtPtr parseSimpleStatement(bool RequireSemicolon) {
    // Lookahead to distinguish assignments from expression statements.
    if (at(TokKind::Identifier)) {
      TokKind K1 = peek(1).Kind;
      bool IsAssignLike =
          K1 == TokKind::Assign || K1 == TokKind::PlusAssign ||
          K1 == TokKind::MinusAssign || K1 == TokKind::StarAssign ||
          K1 == TokKind::PlusPlus || K1 == TokKind::MinusMinus ||
          K1 == TokKind::LBracket;
      if (IsAssignLike) {
        // `x[e] op= ...` vs. a bare read `x[e];` — parse the lvalue first
        // and check what follows.
        auto S = makeStmt(Stmt::Kind::Assign);
        S->Name = cur().Text;
        advance();
        if (accept(TokKind::LBracket)) {
          S->LhsIndex = parseExpr();
          expect(TokKind::RBracket, "after array index");
        }
        switch (cur().Kind) {
        case TokKind::Assign:
          S->OpText = "=";
          break;
        case TokKind::PlusAssign:
          S->OpText = "+=";
          break;
        case TokKind::MinusAssign:
          S->OpText = "-=";
          break;
        case TokKind::StarAssign:
          S->OpText = "*=";
          break;
        case TokKind::PlusPlus:
          S->OpText = "++";
          break;
        case TokKind::MinusMinus:
          S->OpText = "--";
          break;
        default:
          error("expected an assignment operator");
          return S;
        }
        advance();
        if (S->OpText != "++" && S->OpText != "--")
          S->Rhs = parseExpr();
        if (RequireSemicolon)
          expect(TokKind::Semicolon, "after assignment");
        return S;
      }
    }
    auto S = makeStmt(Stmt::Kind::ExprStmt);
    S->Init = parseExpr();
    if (RequireSemicolon)
      expect(TokKind::Semicolon, "after expression");
    return S;
  }

  //===------------------------------------------------------------------===
  // Expressions (precedence climbing)
  //===------------------------------------------------------------------===

  ExprPtr makeExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = cur().Line;
    E->Col = cur().Col;
    return E;
  }

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr Cond = parseBinary(0);
    if (!at(TokKind::Question))
      return Cond;
    auto E = makeExpr(Expr::Kind::Ternary);
    advance();
    E->Cond = std::move(Cond);
    E->Lhs = parseExpr();
    expect(TokKind::Colon, "in conditional expression");
    E->Rhs = parseTernary();
    return E;
  }

  /// Binary operator precedence; -1 if not a binary operator.
  static int precedence(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 0;
    case TokKind::AmpAmp:
      return 1;
    case TokKind::Pipe:
      return 2;
    case TokKind::Caret:
      return 3;
    case TokKind::Amp:
      return 4;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 5;
    case TokKind::Less:
    case TokKind::LessEq:
    case TokKind::Greater:
    case TokKind::GreaterEq:
      return 6;
    case TokKind::Shl:
    case TokKind::Shr:
      return 7;
    case TokKind::Plus:
    case TokKind::Minus:
      return 8;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 9;
    default:
      return -1;
    }
  }

  static const char *opText(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return "||";
    case TokKind::AmpAmp:
      return "&&";
    case TokKind::Pipe:
      return "|";
    case TokKind::Caret:
      return "^";
    case TokKind::Amp:
      return "&";
    case TokKind::EqEq:
      return "==";
    case TokKind::NotEq:
      return "!=";
    case TokKind::Less:
      return "<";
    case TokKind::LessEq:
      return "<=";
    case TokKind::Greater:
      return ">";
    case TokKind::GreaterEq:
      return ">=";
    case TokKind::Shl:
      return "<<";
    case TokKind::Shr:
      return ">>";
    case TokKind::Plus:
      return "+";
    case TokKind::Minus:
      return "-";
    case TokKind::Star:
      return "*";
    case TokKind::Slash:
      return "/";
    case TokKind::Percent:
      return "%";
    default:
      return "?";
    }
  }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr Lhs = parseUnary();
    for (;;) {
      int Prec = precedence(cur().Kind);
      if (Prec < MinPrec)
        return Lhs;
      auto E = makeExpr(Expr::Kind::Binary);
      E->OpText = opText(cur().Kind);
      advance();
      E->Lhs = std::move(Lhs);
      E->Rhs = parseBinary(Prec + 1); // All binary operators left-associate.
      Lhs = std::move(E);
    }
  }

  ExprPtr parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::Bang) || at(TokKind::Tilde)) {
      auto E = makeExpr(Expr::Kind::Unary);
      E->OpText = at(TokKind::Minus) ? "-" : at(TokKind::Bang) ? "!" : "~";
      advance();
      E->Lhs = parseUnary();
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (E && E->K == Expr::Kind::Ident && at(TokKind::LBracket)) {
      auto Index = makeExpr(Expr::Kind::Index);
      advance();
      Index->Name = E->Name;
      Index->Line = E->Line;
      Index->Col = E->Col;
      Index->Lhs = parseExpr();
      expect(TokKind::RBracket, "after array index");
      return Index;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    switch (cur().Kind) {
    case TokKind::IntLiteral: {
      auto E = makeExpr(Expr::Kind::IntLit);
      E->IntValue = cur().IntValue;
      advance();
      return E;
    }
    case TokKind::CharLiteral: {
      auto E = makeExpr(Expr::Kind::CharLit);
      E->IntValue = cur().IntValue;
      advance();
      return E;
    }
    case TokKind::Identifier: {
      if (peek(1).Kind == TokKind::LParen) {
        auto E = makeExpr(Expr::Kind::Call);
        E->Name = cur().Text;
        advance();
        advance(); // '('.
        if (!at(TokKind::RParen)) {
          do {
            E->Args.push_back(parseExpr());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "after call arguments");
        return E;
      }
      auto E = makeExpr(Expr::Kind::Ident);
      E->Name = cur().Text;
      advance();
      return E;
    }
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "to close a parenthesized expression");
      return E;
    }
    default: {
      std::ostringstream OS;
      OS << "expected an expression, found " << tokKindName(cur().Kind);
      error(OS.str());
      // Return a zero literal so lowering can proceed past the error.
      // Statement-terminating tokens stay put so the caller's recovery
      // can re-synchronize on them (and report later errors).
      auto E = makeExpr(Expr::Kind::IntLit);
      if (!at(TokKind::Semicolon) && !at(TokKind::RParen) &&
          !at(TokKind::RBrace) && !at(TokKind::Comma) && !at(TokKind::End))
        advance();
      return E;
    }
    }
  }

  std::vector<Token> Tokens;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;
  bool Panicking = false;
};

} // namespace

ast::ProgramAst symmerge::parseMiniC(std::string_view Source,
                                     std::vector<Diagnostic> &Diags) {
  return Parser(tokenize(Source), Diags).run();
}
