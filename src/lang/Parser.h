//===- Parser.h - MiniC recursive-descent parser ----------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_LANG_PARSER_H
#define SYMMERGE_LANG_PARSER_H

#include "lang/Ast.h"

#include <string>
#include <string_view>
#include <vector>

namespace symmerge {

/// A frontend diagnostic with 1-based source position.
struct Diagnostic {
  int Line = 0;
  int Col = 0;
  std::string Message;

  std::string str() const;
};

/// Parses MiniC source into an AST. On syntax errors, diagnostics are
/// appended to \p Diags and parsing recovers at statement boundaries; the
/// returned AST is usable only when \p Diags stays empty.
ast::ProgramAst parseMiniC(std::string_view Source,
                           std::vector<Diagnostic> &Diags);

} // namespace symmerge

#endif // SYMMERGE_LANG_PARSER_H
