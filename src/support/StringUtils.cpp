//===- StringUtils.cpp - Small string helpers ------------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace symmerge;

std::string symmerge::replaceAll(std::string Text, std::string_view From,
                                 std::string_view To) {
  assert(!From.empty() && "cannot replace an empty needle");
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}

std::vector<std::string> symmerge::splitString(std::string_view Text,
                                               char Sep) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.emplace_back(Text.substr(Begin, I - Begin));
      Begin = I + 1;
    }
  }
  return Parts;
}

bool symmerge::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string symmerge::formatDouble(double V, int Precision) {
  std::ostringstream OS;
  OS.precision(Precision);
  OS << V;
  return OS.str();
}
