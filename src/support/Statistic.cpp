//===- Statistic.cpp - Named counters implementation ----------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <sstream>

using namespace symmerge;

Statistic::Statistic(const char *Group, const char *Name, const char *Desc)
    : Group(Group), Name(Name), Desc(Desc) {
  StatisticRegistry::instance().registerStatistic(this);
}

StatisticRegistry &StatisticRegistry::instance() {
  static StatisticRegistry Registry;
  return Registry;
}

void StatisticRegistry::registerStatistic(Statistic *S) {
  Stats.push_back(S);
}

void StatisticRegistry::resetAll() {
  for (Statistic *S : Stats)
    S->reset();
}

std::string StatisticRegistry::report() const {
  std::ostringstream OS;
  for (const Statistic *S : Stats)
    OS << S->group() << '.' << S->name() << " = " << S->value() << '\n';
  return OS.str();
}
