//===- RNG.h - Deterministic pseudo-random number generator -----*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) used by randomized search
/// strategies and property tests. We avoid std::mt19937 so that sequences
/// are reproducible across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SUPPORT_RNG_H
#define SYMMERGE_SUPPORT_RNG_H

#include "support/Hashing.h"

#include <array>
#include <cassert>
#include <cstdint>

namespace symmerge {

/// Deterministic 64-bit PRNG with a fixed, documented algorithm.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x5eed5eed5eed5eedULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64 expansion.
  void reseed(uint64_t Seed) {
    for (auto &Word : State) {
      Seed = hashMix(Seed);
      Word = Seed | 1; // Never all-zero state.
    }
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound). \p Bound > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Exposes the raw generator state for checkpointing. Restoring a saved
  /// cursor resumes the sequence at exactly the point it was saved.
  std::array<uint64_t, 4> save() const {
    return {State[0], State[1], State[2], State[3]};
  }
  void restore(const std::array<uint64_t, 4> &Saved) {
    for (int I = 0; I < 4; ++I)
      State[I] = Saved[I];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace symmerge

#endif // SYMMERGE_SUPPORT_RNG_H
