//===- Hashing.h - Deterministic hash utilities -----------------*- C++ -*-===//
//
// Part of SymMerge, a reproduction of "Efficient State Merging in Symbolic
// Execution" (PLDI 2012). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit hashing helpers used for expression hash-consing,
/// solver query caching, and DSM state-similarity hashes. All hashes are
/// stable across runs (no pointer-derived or ASLR-dependent inputs), which
/// keeps exploration deterministic under a fixed random seed.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SUPPORT_HASHING_H
#define SYMMERGE_SUPPORT_HASHING_H

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace symmerge {

/// Mixes the bits of \p X with a finalizer derived from splitmix64.
/// Good avalanche behaviour for sequential ids.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an accumulated hash \p Seed with a new value \p V.
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  // Boost-style combiner extended to 64 bits.
  return Seed ^ (hashMix(V) + 0x9e3779b97f4a7c15ULL + (Seed << 12) +
                 (Seed >> 4));
}

/// FNV-1a hash of a byte string; stable across platforms.
inline uint64_t hashBytes(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// FNV-1a hash of a string view.
inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// One bit of a 64-bit footprint signature for id \p X (a constraint or
/// variable node id). Signatures are the O(1) pre-filter of the cache
/// probe paths: a set's signature is the OR of its members' bits, and
/// `(A & ~B) != 0` proves set A is NOT a subset of set B (the converse
/// can false-positive — the filter only skips work, never answers).
inline uint64_t footprintBit(uint64_t X) {
  return 1ull << (hashMix(X) & 63);
}

/// OR of footprintBit over a container of ids.
template <typename Container>
inline uint64_t footprintSignature(const Container &Ids) {
  uint64_t Sig = 0;
  for (uint64_t Id : Ids)
    Sig |= footprintBit(Id);
  return Sig;
}

} // namespace symmerge

#endif // SYMMERGE_SUPPORT_HASHING_H
