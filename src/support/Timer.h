//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the engine's time budgets and by the
/// benchmark harnesses that reproduce the paper's completion-time figures.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SUPPORT_TIMER_H
#define SYMMERGE_SUPPORT_TIMER_H

#include <chrono>

namespace symmerge {

/// Measures elapsed wall-clock time since construction or the last restart.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void restart() { Start = Clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace symmerge

#endif // SYMMERGE_SUPPORT_TIMER_H
