//===- Statistic.h - Named counters for engine instrumentation --*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters in the spirit of LLVM's Statistic class.
/// The symbolic execution engine and solver stack use these to report the
/// quantities the paper's evaluation is built on (solver queries, states
/// merged, fast-forwarding attempts, ...).
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SUPPORT_STATISTIC_H
#define SYMMERGE_SUPPORT_STATISTIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace symmerge {

/// A process-wide named counter. Instances should have static storage
/// duration; they register themselves on first use.
class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Desc);

  Statistic &operator++() {
    ++Value;
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    Value += N;
    return *this;
  }
  void reset() { Value = 0; }

  uint64_t value() const { return Value; }
  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }

private:
  const char *Group;
  const char *Name;
  const char *Desc;
  uint64_t Value = 0;
};

/// Global registry over all statically registered statistics.
class StatisticRegistry {
public:
  static StatisticRegistry &instance();

  void registerStatistic(Statistic *S);

  /// All registered statistics, in registration order.
  const std::vector<Statistic *> &statistics() const { return Stats; }

  /// Resets every registered counter to zero (used between experiments).
  void resetAll();

  /// Renders a "group.name = value" report, one counter per line.
  std::string report() const;

private:
  std::vector<Statistic *> Stats;
};

} // namespace symmerge

#endif // SYMMERGE_SUPPORT_STATISTIC_H
