//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the MiniC frontend, the IR printer, and the
/// workload template instantiation ("${N}"/"${L}" substitution).
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SUPPORT_STRINGUTILS_H
#define SYMMERGE_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace symmerge {

/// Returns \p Text with every occurrence of \p From replaced by \p To.
/// \p From must be non-empty.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

/// Splits \p Text on \p Sep; empty fields are preserved.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Formats a double with a fixed number of significant digits, suitable
/// for deterministic golden-output tests.
std::string formatDouble(double V, int Precision = 6);

} // namespace symmerge

#endif // SYMMERGE_SUPPORT_STRINGUTILS_H
