//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over a Module. Run after frontend lowering
/// and by tests that hand-build IR; the engine asserts a verified module.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_VERIFIER_H
#define SYMMERGE_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace symmerge {

/// Checks module well-formedness. Returns a list of human-readable errors;
/// empty means the module is valid. If \p RequireMain, the module must
/// define a void, parameterless `main`.
std::vector<std::string> verifyModule(const Module &M,
                                      bool RequireMain = true);

} // namespace symmerge

#endif // SYMMERGE_IR_VERIFIER_H
