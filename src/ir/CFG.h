//===- CFG.h - CFG analyses: RPO, dominators, loops, trip counts *- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow analyses over a Function:
///  - reverse postorder (the topological order used by SSM and by DSM's
///    fast-forwarding pick),
///  - dominator tree (Cooper-Harvey-Kennedy),
///  - natural loop forest with back edges and exits,
///  - static trip counts for counted loops (QCE's alternative to the
///    kappa bound, paper §3.2 "the pass attempts to statically determine
///    trip counts").
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_CFG_H
#define SYMMERGE_IR_CFG_H

#include "ir/IR.h"

#include <memory>
#include <optional>
#include <vector>

namespace symmerge {

/// Per-function CFG facts. Built once; the function must not change after.
class CFGInfo {
public:
  explicit CFGInfo(const Function &F);

  const Function &function() const { return F; }

  /// Blocks in reverse postorder; entry first. Unreachable blocks are
  /// appended at the end (after all reachable ones) in id order.
  const std::vector<const BasicBlock *> &rpo() const { return RPO; }

  /// Position of \p BB in rpo(); doubles as the topological rank used by
  /// the topological search strategy.
  int rpoIndex(const BasicBlock *BB) const { return RPOIndex[BB->id()]; }

  const std::vector<const BasicBlock *> &
  predecessors(const BasicBlock *BB) const {
    return Preds[BB->id()];
  }

  /// Immediate dominator; null for the entry block (and unreachable ones).
  const BasicBlock *idom(const BasicBlock *BB) const {
    int I = IDom[BB->id()];
    return I < 0 ? nullptr : Blocks[I];
  }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True if edge From->To is a back edge (To dominates From).
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
    return dominates(To, From);
  }

private:
  const Function &F;
  std::vector<const BasicBlock *> Blocks; // By id.
  std::vector<const BasicBlock *> RPO;
  std::vector<int> RPOIndex;
  std::vector<std::vector<const BasicBlock *>> Preds;
  std::vector<int> IDom;
};

/// A natural loop: header plus body blocks; nested loops form a forest.
struct Loop {
  const BasicBlock *Header = nullptr;
  std::vector<const BasicBlock *> Blocks; ///< Includes the header.
  std::vector<bool> Contains;             ///< Indexed by block id.
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  /// Edges leaving the loop: (inside-block, outside-target).
  std::vector<std::pair<const BasicBlock *, const BasicBlock *>> Exits;
  /// Statically determined iteration count, if the loop matches a counted
  /// pattern (i = c0; i <cmp> C; i += step with a single in-loop update).
  std::optional<uint64_t> TripCount;

  bool contains(const BasicBlock *BB) const { return Contains[BB->id()]; }
};

/// The loop forest of a function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const CFGInfo &CFG);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }
  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// Innermost loop containing \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const { return Innermost[BB->id()]; }

  /// Loop depth of \p BB (0 = not in any loop).
  unsigned depth(const BasicBlock *BB) const;

private:
  void computeTripCount(Loop &L, const CFGInfo &CFG);

  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> Innermost;
};

} // namespace symmerge

#endif // SYMMERGE_IR_CFG_H
