//===- CFG.cpp - CFG analyses implementation --------------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include "expr/ExprContext.h"

#include <algorithm>

using namespace symmerge;

//===----------------------------------------------------------------------===
// CFGInfo
//===----------------------------------------------------------------------===

CFGInfo::CFGInfo(const Function &F) : F(F) {
  size_t N = F.numBlocks();
  Blocks.resize(N);
  for (const auto &BB : F.blocks())
    Blocks[BB->id()] = BB.get();

  // Postorder DFS from the entry block.
  std::vector<uint8_t> Visited(N, 0);
  std::vector<const BasicBlock *> Postorder;
  std::vector<std::pair<const BasicBlock *, size_t>> Stack;
  Stack.push_back({F.entry(), 0});
  Visited[F.entry()->id()] = 1;
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      const BasicBlock *S = Succs[NextSucc++];
      if (!Visited[S->id()]) {
        Visited[S->id()] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    Postorder.push_back(BB);
    Stack.pop_back();
  }

  RPO.assign(Postorder.rbegin(), Postorder.rend());
  for (size_t I = 0; I < N; ++I)
    if (!Visited[I])
      RPO.push_back(Blocks[I]); // Unreachable blocks trail the order.
  RPOIndex.assign(N, -1);
  for (size_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]->id()] = static_cast<int>(I);

  // Predecessor lists.
  Preds.assign(N, {});
  for (const auto &BB : F.blocks())
    for (const BasicBlock *S : BB->successors())
      Preds[S->id()].push_back(BB.get());

  // Dominators (Cooper-Harvey-Kennedy). IDom of the entry temporarily
  // points at itself to simplify intersection.
  IDom.assign(N, -1);
  int EntryId = F.entry()->id();
  IDom[EntryId] = EntryId;
  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *BB : RPO) {
      if (BB->id() == EntryId || !Visited[BB->id()])
        continue;
      int NewIDom = -1;
      for (const BasicBlock *P : Preds[BB->id()]) {
        if (IDom[P->id()] < 0)
          continue;
        NewIDom = NewIDom < 0 ? P->id() : Intersect(P->id(), NewIDom);
      }
      if (NewIDom >= 0 && IDom[BB->id()] != NewIDom) {
        IDom[BB->id()] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[EntryId] = -1; // Externally, the entry has no immediate dominator.
}

bool CFGInfo::dominates(const BasicBlock *A, const BasicBlock *B) const {
  const BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    int I = IDom[Cur->id()];
    Cur = I < 0 ? nullptr : Blocks[I];
  }
  return false;
}

//===----------------------------------------------------------------------===
// LoopInfo
//===----------------------------------------------------------------------===

LoopInfo::LoopInfo(const Function &F, const CFGInfo &CFG) {
  size_t N = F.numBlocks();
  Innermost.assign(N, nullptr);

  // Collect back edges grouped by header.
  std::vector<std::vector<const BasicBlock *>> LatchesByHeader(N);
  for (const auto &BB : F.blocks())
    for (const BasicBlock *S : BB->successors())
      if (CFG.dominates(S, BB.get()))
        LatchesByHeader[S->id()].push_back(BB.get());

  // Build the natural loop of each header: header + everything that can
  // reach a latch without passing through the header.
  for (const auto &HeaderPtr : F.blocks()) {
    const BasicBlock *Header = HeaderPtr.get();
    const auto &Latches = LatchesByHeader[Header->id()];
    if (Latches.empty())
      continue;
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Contains.assign(N, false);
    L->Contains[Header->id()] = true;
    L->Blocks.push_back(Header);
    std::vector<const BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (L->Contains[BB->id()])
        continue;
      L->Contains[BB->id()] = true;
      L->Blocks.push_back(BB);
      for (const BasicBlock *P : CFG.predecessors(BB))
        Work.push_back(P);
    }
    for (const BasicBlock *BB : L->Blocks)
      for (const BasicBlock *S : BB->successors())
        if (!L->Contains[S->id()])
          L->Exits.push_back({BB, S});
    Loops.push_back(std::move(L));
  }

  // Nesting: smallest containing loop is the innermost.
  std::sort(Loops.begin(), Loops.end(),
            [](const auto &A, const auto &B) {
              return A->Blocks.size() < B->Blocks.size();
            });
  for (const auto &HeaderPtr : F.blocks()) {
    const BasicBlock *BB = HeaderPtr.get();
    for (const auto &L : Loops) {
      if (L->contains(BB)) {
        Innermost[BB->id()] = L.get();
        break;
      }
    }
  }
  for (auto &L : Loops) {
    for (auto &M : Loops) {
      if (M.get() == L.get() || M->Blocks.size() <= L->Blocks.size())
        continue;
      if (M->contains(L->Header)) {
        L->Parent = M.get();
        M->SubLoops.push_back(L.get());
        break; // Sorted ascending: the first larger container is tightest.
      }
    }
    if (!L->Parent)
      TopLevel.push_back(L.get());
  }

  for (auto &L : Loops)
    computeTripCount(*L, CFG);
}

unsigned LoopInfo::depth(const BasicBlock *BB) const {
  unsigned D = 0;
  for (Loop *L = Innermost[BB->id()]; L; L = L->Parent)
    ++D;
  return D;
}

/// Evaluates a comparison on masked \p Width-bit values.
static bool evalCmp(ExprKind K, uint64_t L, uint64_t R, unsigned Width) {
  int64_t SL = ExprContext::signExtend(L, Width);
  int64_t SR = ExprContext::signExtend(R, Width);
  switch (K) {
  case ExprKind::Eq:
    return L == R;
  case ExprKind::Ne:
    return L != R;
  case ExprKind::Ult:
    return L < R;
  case ExprKind::Ule:
    return L <= R;
  case ExprKind::Slt:
    return SL < SR;
  case ExprKind::Sle:
    return SL <= SR;
  default:
    return false;
  }
}

/// Mirrors a comparison so `cmp(C, i)` reads as `mirror(cmp)(i, C)`.
static ExprKind mirrorCmp(ExprKind K) {
  switch (K) {
  case ExprKind::Ult:
    return ExprKind::Ule; // C < i  <=>  !(i <= C); handled via polarity.
  default:
    return K;
  }
}

void LoopInfo::computeTripCount(Loop &L, const CFGInfo &CFG) {
  (void)CFG;
  const BasicBlock *H = L.Header;
  const Instr &Term = H->terminator();
  if (Term.Op != Opcode::Br || !Term.A.isLocal())
    return;
  int CondLocal = Term.A.LocalId;

  // Find the comparison defining the branch condition inside the header.
  const Instr *Cmp = nullptr;
  for (const Instr &I : H->instructions()) {
    if (I.Dst == CondLocal) {
      if (I.Op == Opcode::BinOp && isComparisonKind(I.SubKind))
        Cmp = &I;
      else
        return; // Condition computed some other way; give up.
    }
  }
  if (!Cmp)
    return;

  // Normalize to cmp(IV, Bound) with a constant bound. `cmp(C, i)` forms
  // other than Ult are mirrored exactly; `C < i` has no exact mirror among
  // our kinds, so we give up on it (kappa applies).
  ExprKind CmpKind = Cmp->SubKind;
  Operand IVOp, BoundOp;
  if (Cmp->A.isLocal() && Cmp->B.isConst()) {
    IVOp = Cmp->A;
    BoundOp = Cmp->B;
  } else if (Cmp->A.isConst() && Cmp->B.isLocal()) {
    if (CmpKind == ExprKind::Ult || CmpKind == ExprKind::Ule ||
        CmpKind == ExprKind::Slt || CmpKind == ExprKind::Sle)
      return;
    IVOp = Cmp->B;
    BoundOp = Cmp->A;
    CmpKind = mirrorCmp(CmpKind);
  } else {
    return;
  }
  int IV = IVOp.LocalId;
  const Function &F = *H->parent();
  if (!F.local(IV).Ty.isInt())
    return;
  unsigned Width = F.local(IV).Ty.Width;
  uint64_t Bound = ExprContext::maskToWidth(BoundOp.Value, Width);

  // Which branch continues the loop?
  bool ThenInLoop = L.contains(Term.Target1);
  bool ElseInLoop = L.contains(Term.Target2);
  if (ThenInLoop == ElseInLoop)
    return;
  bool ContinueOnTrue = ThenInLoop;

  // Exactly one in-loop update of the IV: IV = IV + step.
  const Instr *Update = nullptr;
  for (const BasicBlock *BB : L.Blocks) {
    for (const Instr &I : BB->instructions()) {
      if (I.Dst != IV)
        continue;
      if (Update)
        return; // Multiple writes.
      Update = &I;
    }
  }
  if (!Update || Update->Op != Opcode::BinOp ||
      Update->SubKind != ExprKind::Add)
    return;
  uint64_t Step;
  if (Update->A.isLocal() && Update->A.LocalId == IV && Update->B.isConst())
    Step = Update->B.Value;
  else if (Update->B.isLocal() && Update->B.LocalId == IV &&
           Update->A.isConst())
    Step = Update->A.Value;
  else
    return;
  Step = ExprContext::maskToWidth(Step, Width);
  if (Step == 0)
    return;

  // Initial value: the unique out-of-loop predecessor of the header must
  // assign a constant to the IV.
  const BasicBlock *Preheader = nullptr;
  for (const BasicBlock *P : CFG.predecessors(H)) {
    if (L.contains(P))
      continue;
    if (Preheader)
      return; // Multiple entries.
    Preheader = P;
  }
  if (!Preheader)
    return;
  std::optional<uint64_t> Init;
  for (const Instr &I : Preheader->instructions()) {
    if (I.Dst != IV)
      continue;
    if (I.Op == Opcode::Copy && I.A.isConst())
      Init = ExprContext::maskToWidth(I.A.Value, Width);
    else
      Init.reset();
  }
  if (!Init)
    return;

  // Simulate the counted loop; exact for every comparison kind, including
  // wrap-around, with a generous cap.
  constexpr uint64_t Cap = 1 << 16;
  uint64_t X = *Init;
  uint64_t Trips = 0;
  while (Trips <= Cap) {
    bool CondHolds = evalCmp(CmpKind, X, Bound, Width);
    if (CondHolds != ContinueOnTrue)
      break;
    ++Trips;
    X = ExprContext::maskToWidth(X + Step, Width);
  }
  if (Trips <= Cap)
    L.TripCount = Trips;
}
