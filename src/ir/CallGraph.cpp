//===- CallGraph.cpp - Call graph construction and Tarjan SCCs -------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"

#include <algorithm>

using namespace symmerge;

CallGraph::CallGraph(const Module &M) {
  for (const auto &F : M.functions()) {
    std::vector<const Function *> &Out = Callees[F.get()];
    for (const auto &BB : F->blocks()) {
      for (const Instr &I : BB->instructions()) {
        if (I.Op != Opcode::Call)
          continue;
        if (std::find(Out.begin(), Out.end(), I.Callee) == Out.end())
          Out.push_back(I.Callee);
      }
    }
  }

  // Iterative Tarjan SCC; components complete in callees-first order.
  struct NodeState {
    int Index = -1;
    int LowLink = 0;
    bool OnStack = false;
  };
  std::unordered_map<const Function *, NodeState> State;
  std::vector<const Function *> TarjanStack;
  int NextIndex = 0;

  struct Frame {
    const Function *F;
    size_t NextCallee;
  };

  for (const auto &Root : M.functions()) {
    if (State[Root.get()].Index >= 0)
      continue;
    std::vector<Frame> CallStack{{Root.get(), 0}};
    State[Root.get()].Index = State[Root.get()].LowLink = NextIndex++;
    State[Root.get()].OnStack = true;
    TarjanStack.push_back(Root.get());

    while (!CallStack.empty()) {
      Frame &Top = CallStack.back();
      const auto &Out = Callees[Top.F];
      if (Top.NextCallee < Out.size()) {
        const Function *Next = Out[Top.NextCallee++];
        NodeState &NS = State[Next];
        if (NS.Index < 0) {
          NS.Index = NS.LowLink = NextIndex++;
          NS.OnStack = true;
          TarjanStack.push_back(Next);
          CallStack.push_back({Next, 0});
        } else if (NS.OnStack) {
          State[Top.F].LowLink = std::min(State[Top.F].LowLink, NS.Index);
        }
        continue;
      }
      // Done with Top.F.
      NodeState &TS = State[Top.F];
      if (TS.LowLink == TS.Index) {
        SCC Component;
        const Function *Member;
        do {
          Member = TarjanStack.back();
          TarjanStack.pop_back();
          State[Member].OnStack = false;
          Component.Members.push_back(Member);
        } while (Member != Top.F);
        const auto &Out2 = Callees[Top.F];
        Component.Recursive =
            Component.Members.size() > 1 ||
            std::find(Out2.begin(), Out2.end(), Top.F) != Out2.end();
        SCCs.push_back(std::move(Component));
      }
      const Function *Finished = Top.F;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        NodeState &PS = State[CallStack.back().F];
        PS.LowLink = std::min(PS.LowLink, State[Finished].LowLink);
      }
    }
  }
}
