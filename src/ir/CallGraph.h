//===- CallGraph.h - Call graph and bottom-up SCC order ---------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over a Module with Tarjan SCCs in bottom-up order. QCE's
/// interprocedural summary computation (paper §3.2, "per-function bottom-up
/// call graph traversal with bounded recursion") walks this order.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_CALLGRAPH_H
#define SYMMERGE_IR_CALLGRAPH_H

#include "ir/IR.h"

#include <unordered_map>
#include <vector>

namespace symmerge {

/// Immutable call graph of a module.
class CallGraph {
public:
  /// A strongly connected component of functions; `Recursive` if it has
  /// more than one member or a self call.
  struct SCC {
    std::vector<const Function *> Members;
    bool Recursive = false;
  };

  explicit CallGraph(const Module &M);

  /// Distinct callees of \p F in first-call order.
  const std::vector<const Function *> &callees(const Function *F) const {
    return Callees.at(F);
  }

  /// SCCs in bottom-up (callees-first) order.
  const std::vector<SCC> &bottomUpSCCs() const { return SCCs; }

private:
  std::unordered_map<const Function *, std::vector<const Function *>> Callees;
  std::vector<SCC> SCCs;
};

} // namespace symmerge

#endif // SYMMERGE_IR_CALLGRAPH_H
