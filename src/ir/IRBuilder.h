//===- IRBuilder.h - Convenience construction of IR -------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin builder over the IR used by the MiniC lowering, the tests, and
/// the quickstart example. Tracks a current insertion block and appends
/// instructions to it.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_IRBUILDER_H
#define SYMMERGE_IR_IRBUILDER_H

#include "ir/IR.h"

namespace symmerge {

/// Appends instructions to a current basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() { return M; }

  /// Starts a new function and makes it current. Creates no blocks.
  Function *startFunction(std::string Name, Type RetTy, bool IsVoid,
                          std::vector<Local> Params) {
    F = M.createFunction(std::move(Name), RetTy, IsVoid, std::move(Params));
    BB = nullptr;
    return F;
  }

  Function *function() const { return F; }

  /// Adds a (non-parameter) local slot to the current function.
  int addLocal(std::string Name, Type Ty) {
    assert(F && "no current function");
    return F->addLocal(std::move(Name), Ty);
  }

  BasicBlock *createBlock(std::string Name) {
    assert(F && "no current function");
    return F->createBlock(std::move(Name));
  }

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() const { return BB; }

  /// True if the current block already ends in a terminator.
  bool blockTerminated() const {
    return BB && !BB->instructions().empty() &&
           BB->instructions().back().isTerminator();
  }

  Operand localOp(int Id) const { return Operand::local(Id); }
  Operand constOp(uint64_t V, unsigned Width) const {
    return Operand::constant(V, Width);
  }

  void emitBinOp(ExprKind K, int Dst, Operand A, Operand B) {
    Instr I;
    I.Op = Opcode::BinOp;
    I.SubKind = K;
    I.Dst = Dst;
    I.A = A;
    I.B = B;
    append(I);
  }

  void emitUnOp(ExprKind K, int Dst, Operand A) {
    Instr I;
    I.Op = Opcode::UnOp;
    I.SubKind = K;
    I.Dst = Dst;
    I.A = A;
    append(I);
  }

  void emitCopy(int Dst, Operand A) {
    Instr I;
    I.Op = Opcode::Copy;
    I.Dst = Dst;
    I.A = A;
    append(I);
  }

  void emitLoad(int Dst, int ArrayLocal, Operand Index) {
    Instr I;
    I.Op = Opcode::Load;
    I.Dst = Dst;
    I.ArrayLocal = ArrayLocal;
    I.A = Index;
    append(I);
  }

  void emitStore(int ArrayLocal, Operand Index, Operand Value) {
    Instr I;
    I.Op = Opcode::Store;
    I.ArrayLocal = ArrayLocal;
    I.A = Index;
    I.B = Value;
    append(I);
  }

  void emitCall(int Dst, Function *Callee, std::vector<Operand> Args) {
    Instr I;
    I.Op = Opcode::Call;
    I.Dst = Dst;
    I.Callee = Callee;
    I.Args = std::move(Args);
    append(I);
  }

  void emitRet(Operand A = Operand::none()) {
    Instr I;
    I.Op = Opcode::Ret;
    I.A = A;
    append(I);
  }

  void emitBr(Operand Cond, BasicBlock *Then, BasicBlock *Else) {
    Instr I;
    I.Op = Opcode::Br;
    I.A = Cond;
    I.Target1 = Then;
    I.Target2 = Else;
    append(I);
  }

  void emitJump(BasicBlock *Target) {
    Instr I;
    I.Op = Opcode::Jump;
    I.Target1 = Target;
    append(I);
  }

  void emitAssert(Operand Cond, std::string Message) {
    Instr I;
    I.Op = Opcode::Assert;
    I.A = Cond;
    I.Message = std::move(Message);
    append(I);
  }

  void emitAssume(Operand Cond) {
    Instr I;
    I.Op = Opcode::Assume;
    I.A = Cond;
    append(I);
  }

  void emitHalt() {
    Instr I;
    I.Op = Opcode::Halt;
    append(I);
  }

  void emitMakeSymbolic(int LocalId, std::string SymbolicName) {
    Instr I;
    I.Op = Opcode::MakeSymbolic;
    I.Dst = LocalId;
    I.Message = std::move(SymbolicName);
    append(I);
  }

  void emitPrint(Operand A) {
    Instr I;
    I.Op = Opcode::Print;
    I.A = A;
    append(I);
  }

private:
  void append(Instr I) {
    assert(BB && "no insertion point");
    assert(!blockTerminated() && "appending past a terminator");
    BB->instructions().push_back(std::move(I));
  }

  Module &M;
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
};

} // namespace symmerge

#endif // SYMMERGE_IR_IRBUILDER_H
