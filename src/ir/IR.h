//===- IR.h - Typed CFG register IR ----------------------------*- C++ -*-===//
//
// Part of SymMerge, a reproduction of "Efficient State Merging in Symbolic
// Execution" (PLDI 2012). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation the symbolic execution engine runs on.
/// It plays the role LLVM bitcode played for the paper's KLEE prototype:
/// a CFG of basic blocks over named local slots, with explicit branch,
/// call, assertion, and make-symbolic instructions. It is deliberately
/// close to the input language of the paper's Algorithm 1 (assignments,
/// conditional gotos, assert, halt), extended with bounded arrays and
/// function calls.
///
/// Conventions:
///  - Every local slot is either a scalar (i1/i8/i16/i32/i64) or a bounded
///    array of scalars. Array-typed parameters are passed by reference.
///  - Each basic block ends with exactly one terminator (Br, Jump, Ret, or
///    Halt); Assert/Assume do not terminate blocks.
///  - A "location" is a (block, instruction-index) pair; QCE annotates
///    block entries.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_IR_H
#define SYMMERGE_IR_IR_H

#include "expr/Expr.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace symmerge {

class Function;
class BasicBlock;
class Module;

/// Scalar or bounded-array type.
struct Type {
  enum class Kind : uint8_t { Int, Array };

  Kind K = Kind::Int;
  unsigned Width = 64;     ///< Bit width of the scalar / array element.
  unsigned ArraySize = 0;  ///< Number of elements (Array only).

  static Type intTy(unsigned Width) { return Type{Kind::Int, Width, 0}; }
  static Type arrayTy(unsigned ElemWidth, unsigned Size) {
    return Type{Kind::Array, ElemWidth, Size};
  }

  bool isArray() const { return K == Kind::Array; }
  bool isInt() const { return K == Kind::Int; }
  bool operator==(const Type &O) const {
    return K == O.K && Width == O.Width && ArraySize == O.ArraySize;
  }

  std::string str() const;
};

/// A named local slot of a function frame. Parameters occupy the first
/// `Function::numParams()` slots.
struct Local {
  std::string Name;
  Type Ty;
};

/// An instruction operand: a literal constant or a scalar local slot.
struct Operand {
  enum class Kind : uint8_t { None, Const, Local };

  Kind K = Kind::None;
  unsigned Width = 0;   ///< Const only.
  uint64_t Value = 0;   ///< Const only.
  int LocalId = -1;     ///< Local only.

  static Operand none() { return Operand{}; }
  static Operand constant(uint64_t V, unsigned Width) {
    return Operand{Kind::Const, Width, V, -1};
  }
  static Operand local(int Id) {
    return Operand{Kind::Local, 0, 0, Id};
  }

  bool isNone() const { return K == Kind::None; }
  bool isConst() const { return K == Kind::Const; }
  bool isLocal() const { return K == Kind::Local; }
};

/// Instruction opcodes. BinOp/UnOp reuse ExprKind as the sub-opcode so the
/// stepper can translate directly into expression construction.
enum class Opcode : uint8_t {
  BinOp,        ///< Dst := A <BinKind> B.
  UnOp,         ///< Dst := <UnKind>(A); casts take the width from Dst.
  Copy,         ///< Dst := A.
  Load,         ///< Dst := ArrayLocal[A].
  Store,        ///< ArrayLocal[A] := B.
  Call,         ///< Dst := Callee(Args...); Dst optional.
  Ret,          ///< Return A (optional) to the caller.
  Br,           ///< if (A) goto Target1 else goto Target2.
  Jump,         ///< goto Target1.
  Assert,       ///< Check A; a falsifying input is a bug + test case.
  Assume,       ///< Constrain exploration to A (paper's follow()).
  Halt,         ///< Terminate the program path (a completed test).
  MakeSymbolic, ///< Make local Dst (scalar or whole array) symbolic input.
  Print,        ///< Output sink; evaluates A, no other effect.
};

const char *opcodeName(Opcode Op);

/// A single IR instruction (tagged union over the fields used per opcode).
struct Instr {
  Opcode Op = Opcode::Halt;
  ExprKind SubKind = ExprKind::Add; ///< BinOp/UnOp sub-opcode.
  int Dst = -1;                     ///< Destination local slot, -1 if none.
  Operand A;                        ///< First operand (see Opcode docs).
  Operand B;                        ///< Second operand.
  int ArrayLocal = -1;              ///< Load/Store array slot.
  BasicBlock *Target1 = nullptr;    ///< Br "then" / Jump target.
  BasicBlock *Target2 = nullptr;    ///< Br "else" target.
  Function *Callee = nullptr;       ///< Call target.
  std::vector<Operand> Args;        ///< Call arguments.
  std::string Message;              ///< Assert message / symbolic name.

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jump || Op == Opcode::Ret ||
           Op == Opcode::Halt;
  }
};

/// A basic block: a straight-line instruction sequence plus a terminator.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name, int Id)
      : Parent(Parent), Name(std::move(Name)), Id(Id) {}

  Function *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  /// Dense per-function block id, assigned in creation order.
  int id() const { return Id; }

  std::vector<Instr> &instructions() { return Instrs; }
  const std::vector<Instr> &instructions() const { return Instrs; }

  const Instr &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block has no terminator");
    return Instrs.back();
  }

  /// Control-flow successors derived from the terminator (0, 1, or 2).
  std::vector<BasicBlock *> successors() const;

private:
  Function *Parent;
  std::string Name;
  int Id;
  std::vector<Instr> Instrs;
};

/// A function: named locals (parameters first) and a CFG of basic blocks.
/// The first created block is the entry block.
class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams,
           std::vector<Local> Locals, Type RetTy, bool IsVoid)
      : Parent(Parent), Name(std::move(Name)), NumParams(NumParams),
        Locals(std::move(Locals)), RetTy(RetTy), IsVoid(IsVoid) {}

  Module *parent() const { return Parent; }
  const std::string &name() const { return Name; }

  unsigned numParams() const { return NumParams; }
  const std::vector<Local> &locals() const { return Locals; }
  const Local &local(int Id) const {
    assert(Id >= 0 && Id < static_cast<int>(Locals.size()) &&
           "local id out of range");
    return Locals[Id];
  }
  /// Adds a local slot and returns its id.
  int addLocal(std::string Name, Type Ty) {
    Locals.push_back({std::move(Name), Ty});
    return static_cast<int>(Locals.size()) - 1;
  }
  /// Finds a local by name; returns -1 if absent.
  int findLocal(const std::string &Name) const;

  bool isVoid() const { return IsVoid; }
  Type returnType() const { return RetTy; }

  BasicBlock *createBlock(std::string Name);
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t numBlocks() const { return Blocks.size(); }

private:
  Module *Parent;
  std::string Name;
  unsigned NumParams;
  std::vector<Local> Locals;
  Type RetTy;
  bool IsVoid;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// A whole program: a set of functions; execution starts at "main".
class Module {
public:
  /// Creates a function. \p IsVoid functions ignore \p RetTy.
  Function *createFunction(std::string Name, Type RetTy, bool IsVoid,
                           std::vector<Local> Params);

  Function *findFunction(const std::string &Name) const;
  Function *mainFunction() const { return findFunction("main"); }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// Renders the whole module as text (see IRPrinter).
  std::string str() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
};

/// A program point: instruction \p Index inside \p Block. Index may equal
/// the instruction count only transiently (never observed by analyses).
struct Location {
  const BasicBlock *Block = nullptr;
  unsigned Index = 0;

  bool operator==(const Location &O) const {
    return Block == O.Block && Index == O.Index;
  }
};

} // namespace symmerge

#endif // SYMMERGE_IR_IR_H
