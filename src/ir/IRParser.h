//===- IRParser.h - Text format parser for the IR ---------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR produced by Module::str() back into a Module,
/// so IR can be written by hand in tests and dumped/reloaded by tools.
/// The format is line-oriented:
///
///   func main() {
///     local %x:i64
///   entry:
///     %x = add %x, 1:i64
///     br %c, then.1, exit.2
///   ...
///   }
///
/// parse(print(M)) reproduces M exactly (print(parse(print(M))) ==
/// print(M) is enforced by the round-trip tests over every workload).
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_IR_IRPARSER_H
#define SYMMERGE_IR_IRPARSER_H

#include "ir/IR.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace symmerge {

/// Outcome of parsing textual IR.
struct IRParseResult {
  std::unique_ptr<Module> M; ///< Null when Errors is non-empty.
  std::vector<std::string> Errors;

  bool ok() const { return M != nullptr; }
};

/// Parses the printer's textual format. The result is structurally
/// verified only if \p Verify is set (callers hand-writing partial IR in
/// tests may want it off).
IRParseResult parseIR(std::string_view Text, bool Verify = true);

} // namespace symmerge

#endif // SYMMERGE_IR_IRPARSER_H
