//===- IR.cpp - IR node implementations and printer -------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <sstream>

using namespace symmerge;

std::string Type::str() const {
  std::ostringstream OS;
  if (isArray())
    OS << 'i' << Width << '[' << ArraySize << ']';
  else
    OS << 'i' << Width;
  return OS.str();
}

const char *symmerge::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::BinOp:
    return "binop";
  case Opcode::UnOp:
    return "unop";
  case Opcode::Copy:
    return "copy";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::Jump:
    return "jump";
  case Opcode::Assert:
    return "assert";
  case Opcode::Assume:
    return "assume";
  case Opcode::Halt:
    return "halt";
  case Opcode::MakeSymbolic:
    return "make_symbolic";
  case Opcode::Print:
    return "print";
  }
  return "<bad-opcode>";
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  if (Instrs.empty())
    return {};
  const Instr &T = Instrs.back();
  switch (T.Op) {
  case Opcode::Br:
    if (T.Target1 == T.Target2)
      return {T.Target1};
    return {T.Target1, T.Target2};
  case Opcode::Jump:
    return {T.Target1};
  default:
    return {};
  }
}

int Function::findLocal(const std::string &Name) const {
  for (size_t I = 0; I < Locals.size(); ++I)
    if (Locals[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

BasicBlock *Function::createBlock(std::string Name) {
  Blocks.push_back(std::make_unique<BasicBlock>(
      this, std::move(Name), static_cast<int>(Blocks.size())));
  return Blocks.back().get();
}

Function *Module::createFunction(std::string Name, Type RetTy, bool IsVoid,
                                 std::vector<Local> Params) {
  unsigned NumParams = static_cast<unsigned>(Params.size());
  Funcs.push_back(std::make_unique<Function>(this, std::move(Name), NumParams,
                                             std::move(Params), RetTy,
                                             IsVoid));
  return Funcs.back().get();
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Funcs)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

//===----------------------------------------------------------------------===
// Printer
//===----------------------------------------------------------------------===

static void printOperand(std::ostringstream &OS, const Function &F,
                         const Operand &Op) {
  switch (Op.K) {
  case Operand::Kind::None:
    OS << "<none>";
    return;
  case Operand::Kind::Const:
    OS << Op.Value << ":i" << Op.Width;
    return;
  case Operand::Kind::Local:
    OS << '%' << F.local(Op.LocalId).Name;
    return;
  }
}

static void printInstr(std::ostringstream &OS, const Function &F,
                       const Instr &I) {
  OS << "  ";
  switch (I.Op) {
  case Opcode::BinOp:
    OS << '%' << F.local(I.Dst).Name << " = " << exprKindName(I.SubKind)
       << ' ';
    printOperand(OS, F, I.A);
    OS << ", ";
    printOperand(OS, F, I.B);
    break;
  case Opcode::UnOp:
    OS << '%' << F.local(I.Dst).Name << " = " << exprKindName(I.SubKind)
       << ' ';
    printOperand(OS, F, I.A);
    break;
  case Opcode::Copy:
    OS << '%' << F.local(I.Dst).Name << " = ";
    printOperand(OS, F, I.A);
    break;
  case Opcode::Load:
    OS << '%' << F.local(I.Dst).Name << " = %" << F.local(I.ArrayLocal).Name
       << '[';
    printOperand(OS, F, I.A);
    OS << ']';
    break;
  case Opcode::Store:
    OS << '%' << F.local(I.ArrayLocal).Name << '[';
    printOperand(OS, F, I.A);
    OS << "] = ";
    printOperand(OS, F, I.B);
    break;
  case Opcode::Call:
    if (I.Dst >= 0)
      OS << '%' << F.local(I.Dst).Name << " = ";
    OS << "call " << I.Callee->name() << '(';
    for (size_t K = 0; K < I.Args.size(); ++K) {
      if (K)
        OS << ", ";
      printOperand(OS, F, I.Args[K]);
    }
    OS << ')';
    break;
  case Opcode::Ret:
    OS << "ret";
    if (!I.A.isNone()) {
      OS << ' ';
      printOperand(OS, F, I.A);
    }
    break;
  case Opcode::Br:
    OS << "br ";
    printOperand(OS, F, I.A);
    OS << ", " << I.Target1->name() << ", " << I.Target2->name();
    break;
  case Opcode::Jump:
    OS << "jump " << I.Target1->name();
    break;
  case Opcode::Assert:
    OS << "assert ";
    printOperand(OS, F, I.A);
    if (!I.Message.empty())
      OS << " \"" << I.Message << '"';
    break;
  case Opcode::Assume:
    OS << "assume ";
    printOperand(OS, F, I.A);
    break;
  case Opcode::Halt:
    OS << "halt";
    break;
  case Opcode::MakeSymbolic:
    OS << "make_symbolic %" << F.local(I.Dst).Name << " \"" << I.Message
       << '"';
    break;
  case Opcode::Print:
    OS << "print ";
    printOperand(OS, F, I.A);
    break;
  }
  OS << '\n';
}

std::string Module::str() const {
  std::ostringstream OS;
  for (const auto &F : Funcs) {
    OS << "func " << F->name() << '(';
    for (unsigned I = 0; I < F->numParams(); ++I) {
      if (I)
        OS << ", ";
      OS << '%' << F->local(I).Name << ':' << F->local(I).Ty.str();
    }
    OS << ')';
    if (!F->isVoid())
      OS << " -> " << F->returnType().str();
    OS << " {\n";
    for (size_t I = F->numParams(); I < F->locals().size(); ++I)
      OS << "  local %" << F->locals()[I].Name << ':'
         << F->locals()[I].Ty.str() << '\n';
    for (const auto &BB : F->blocks()) {
      OS << BB->name() << ":\n";
      for (const Instr &I : BB->instructions())
        printInstr(OS, *F, I);
    }
    OS << "}\n";
  }
  return OS.str();
}
