//===- IRParser.cpp - Text format parser for the IR --------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

using namespace symmerge;

namespace {

/// A cursor over one line of text with token-level helpers.
class LineCursor {
public:
  explicit LineCursor(std::string_view Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t'))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    skipSpace();
    if (Text.compare(Pos, W.size(), W) != 0)
      return false;
    size_t After = Pos + W.size();
    if (After < Text.size() && (std::isalnum(static_cast<unsigned char>(
                                    Text[After])) ||
                                Text[After] == '_'))
      return false; // Longer identifier; not this word.
    Pos = After;
    return true;
  }

  /// Identifier: letters, digits, '_', '.', '#', '[', ']' are allowed in
  /// names only when \p Loose (block labels and symbolic names).
  std::string ident(bool Loose = false) {
    skipSpace();
    size_t Start = Pos;
    auto Ok = [&](char C) {
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.')
        return true;
      return Loose && (C == '#' || C == '[' || C == ']');
    };
    while (Pos < Text.size() && Ok(Text[Pos]))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  bool number(uint64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = std::strtoull(std::string(Text.substr(Start, Pos - Start)).c_str(),
                        nullptr, 10);
    return true;
  }

  /// Quoted string with the printer's escapes left as-is (the printer
  /// emits raw characters inside quotes, so this reads until the closing
  /// quote).
  bool quoted(std::string &Out) {
    skipSpace();
    if (!consume('"'))
      return false;
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != '"')
      ++Pos;
    if (Pos >= Text.size())
      return false;
    Out = std::string(Text.substr(Start, Pos - Start));
    ++Pos;
    return true;
  }

  std::string rest() {
    skipSpace();
    return std::string(Text.substr(Pos));
  }

private:
  std::string_view Text;
  size_t Pos = 0;
};

class IRParserImpl {
public:
  explicit IRParserImpl(std::string_view Text)
      : Lines(splitString(Text, '\n')) {}

  IRParseResult run(bool Verify) {
    IRParseResult Result;
    auto M = std::make_unique<Module>();

    // Pass A: function headers, so calls resolve in any order.
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (startsWith(Lines[I], "func "))
        parseHeader(*M, I);
    }
    if (!Errors.empty()) {
      Result.Errors = std::move(Errors);
      return Result;
    }

    // Pass B: bodies.
    for (size_t I = 0; I < Lines.size(); ++I) {
      if (startsWith(Lines[I], "func "))
        I = parseBody(*M, I);
    }
    if (Errors.empty() && Verify) {
      for (std::string &E : verifyModule(*M, /*RequireMain=*/false))
        Errors.push_back("verifier: " + E);
    }
    if (!Errors.empty()) {
      Result.Errors = std::move(Errors);
      return Result;
    }
    Result.M = std::move(M);
    return Result;
  }

private:
  void error(size_t LineNo, const std::string &Msg) {
    std::ostringstream OS;
    OS << "line " << (LineNo + 1) << ": " << Msg;
    Errors.push_back(OS.str());
  }

  /// Parses `iW` or `iW[N]`.
  bool parseType(LineCursor &C, Type &Out, size_t LineNo) {
    if (!C.consume('i')) {
      error(LineNo, "expected a type");
      return false;
    }
    uint64_t Width = 0;
    if (!C.number(Width)) {
      error(LineNo, "expected a bit width");
      return false;
    }
    if (C.consume('[')) {
      uint64_t Size = 0;
      if (!C.number(Size) || !C.consume(']')) {
        error(LineNo, "expected an array size");
        return false;
      }
      Out = Type::arrayTy(static_cast<unsigned>(Width),
                          static_cast<unsigned>(Size));
      return true;
    }
    Out = Type::intTy(static_cast<unsigned>(Width));
    return true;
  }

  void parseHeader(Module &M, size_t LineNo) {
    LineCursor C(Lines[LineNo]);
    C.consumeWord("func");
    std::string Name = C.ident();
    if (Name.empty() || !C.consume('(')) {
      error(LineNo, "malformed function header");
      return;
    }
    std::vector<Local> Params;
    if (!C.consume(')')) {
      do {
        if (!C.consume('%')) {
          error(LineNo, "expected a parameter");
          return;
        }
        std::string PName = C.ident();
        Type Ty;
        if (!C.consume(':') || !parseType(C, Ty, LineNo))
          return;
        Params.push_back({PName, Ty});
      } while (C.consume(','));
      if (!C.consume(')')) {
        error(LineNo, "expected ')' after parameters");
        return;
      }
    }
    bool IsVoid = true;
    Type RetTy = Type::intTy(64);
    if (C.consume('-')) {
      if (!C.consume('>') || !parseType(C, RetTy, LineNo))
        return;
      IsVoid = false;
    }
    if (M.findFunction(Name)) {
      error(LineNo, "duplicate function '" + Name + "'");
      return;
    }
    M.createFunction(Name, RetTy, IsVoid, std::move(Params));
  }

  /// Parses one function body; returns the index of its closing line.
  size_t parseBody(Module &M, size_t HeaderLine) {
    LineCursor H(Lines[HeaderLine]);
    H.consumeWord("func");
    Function *F = M.findFunction(H.ident());

    // Collect the body's line range and pre-create blocks so branch
    // targets resolve forward.
    size_t End = HeaderLine + 1;
    std::unordered_map<std::string, BasicBlock *> Blocks;
    for (; End < Lines.size() && Lines[End] != "}"; ++End) {
      const std::string &Line = Lines[End];
      if (startsWith(Line, "  "))
        continue; // Instruction or local declaration.
      if (!Line.empty() && Line.back() == ':') {
        std::string Label = Line.substr(0, Line.size() - 1);
        if (Blocks.count(Label)) {
          error(End, "duplicate block label '" + Label + "'");
          continue;
        }
        Blocks.emplace(Label, F->createBlock(Label));
      }
    }
    if (End >= Lines.size()) {
      error(HeaderLine, "missing '}' for function");
      return End;
    }

    // Parse locals and instructions.
    BasicBlock *Cur = nullptr;
    for (size_t I = HeaderLine + 1; I < End; ++I) {
      const std::string &Line = Lines[I];
      if (Line.empty())
        continue;
      if (!startsWith(Line, "  ")) {
        if (Line.back() == ':')
          Cur = Blocks.at(Line.substr(0, Line.size() - 1));
        continue;
      }
      LineCursor C(Line);
      if (C.consumeWord("local")) {
        if (!C.consume('%')) {
          error(I, "expected a local name");
          continue;
        }
        std::string Name = C.ident();
        Type Ty;
        if (!C.consume(':') || !parseType(C, Ty, I))
          continue;
        F->addLocal(Name, Ty);
        continue;
      }
      if (!Cur) {
        error(I, "instruction outside of a block");
        continue;
      }
      parseInstr(M, *F, Blocks, Cur, C, I);
    }
    return End;
  }

  int localIdOrError(Function &F, const std::string &Name, size_t LineNo) {
    int Id = F.findLocal(Name);
    if (Id < 0)
      error(LineNo, "unknown local '%" + Name + "'");
    return Id;
  }

  /// Operand: `%name` or `value:iW`.
  bool parseOperand(Function &F, LineCursor &C, Operand &Out,
                    size_t LineNo) {
    if (C.consume('%')) {
      int Id = localIdOrError(F, C.ident(), LineNo);
      if (Id < 0)
        return false;
      Out = Operand::local(Id);
      return true;
    }
    uint64_t V = 0;
    if (!C.number(V)) {
      error(LineNo, "expected an operand");
      return false;
    }
    if (!C.consume(':')) {
      error(LineNo, "expected ':' after a constant");
      return false;
    }
    Type Ty;
    if (!parseType(C, Ty, LineNo) || !Ty.isInt()) {
      error(LineNo, "constants must have scalar types");
      return false;
    }
    Out = Operand::constant(V, Ty.Width);
    return true;
  }

  BasicBlock *blockOrError(
      const std::unordered_map<std::string, BasicBlock *> &Blocks,
      const std::string &Name, size_t LineNo) {
    auto It = Blocks.find(Name);
    if (It == Blocks.end()) {
      error(LineNo, "unknown block '" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  /// Sub-opcode for UnOp mnemonics; Constant is the "not found" marker.
  static ExprKind unOpKind(const std::string &W) {
    if (W == "not")
      return ExprKind::Not;
    if (W == "neg")
      return ExprKind::Neg;
    if (W == "zext")
      return ExprKind::ZExt;
    if (W == "sext")
      return ExprKind::SExt;
    if (W == "trunc")
      return ExprKind::Trunc;
    return ExprKind::Constant;
  }

  /// Sub-opcode for BinOp mnemonics; Constant is the "not found" marker.
  static ExprKind binOpKind(const std::string &W) {
    static const std::unordered_map<std::string, ExprKind> Map = {
        {"add", ExprKind::Add},   {"sub", ExprKind::Sub},
        {"mul", ExprKind::Mul},   {"udiv", ExprKind::UDiv},
        {"sdiv", ExprKind::SDiv}, {"urem", ExprKind::URem},
        {"srem", ExprKind::SRem}, {"and", ExprKind::And},
        {"or", ExprKind::Or},     {"xor", ExprKind::Xor},
        {"shl", ExprKind::Shl},   {"lshr", ExprKind::LShr},
        {"ashr", ExprKind::AShr}, {"eq", ExprKind::Eq},
        {"ne", ExprKind::Ne},     {"ult", ExprKind::Ult},
        {"ule", ExprKind::Ule},   {"slt", ExprKind::Slt},
        {"sle", ExprKind::Sle}};
    auto It = Map.find(W);
    return It == Map.end() ? ExprKind::Constant : It->second;
  }

  void parseInstr(Module &M, Function &F,
                  const std::unordered_map<std::string, BasicBlock *> &Blocks,
                  BasicBlock *Cur, LineCursor &C, size_t LineNo) {
    Instr I;
    auto Emit = [&]() { Cur->instructions().push_back(std::move(I)); };

    // Keyword-led instructions.
    if (C.consumeWord("halt")) {
      I.Op = Opcode::Halt;
      Emit();
      return;
    }
    if (C.consumeWord("ret")) {
      I.Op = Opcode::Ret;
      if (!C.atEnd() && !parseOperand(F, C, I.A, LineNo))
        return;
      Emit();
      return;
    }
    if (C.consumeWord("jump")) {
      I.Op = Opcode::Jump;
      I.Target1 = blockOrError(Blocks, C.ident(), LineNo);
      if (!I.Target1)
        return;
      Emit();
      return;
    }
    if (C.consumeWord("br")) {
      I.Op = Opcode::Br;
      if (!parseOperand(F, C, I.A, LineNo) || !C.consume(','))
        return;
      I.Target1 = blockOrError(Blocks, C.ident(), LineNo);
      if (!I.Target1 || !C.consume(','))
        return;
      I.Target2 = blockOrError(Blocks, C.ident(), LineNo);
      if (!I.Target2)
        return;
      Emit();
      return;
    }
    bool IsAssert = C.consumeWord("assert");
    if (IsAssert || C.consumeWord("assume")) {
      I.Op = IsAssert ? Opcode::Assert : Opcode::Assume;
      if (!parseOperand(F, C, I.A, LineNo))
        return;
      if (I.Op == Opcode::Assert && C.peek() == '"' &&
          !C.quoted(I.Message)) {
        error(LineNo, "malformed assert message");
        return;
      }
      Emit();
      return;
    }
    if (C.consumeWord("print")) {
      I.Op = Opcode::Print;
      if (!parseOperand(F, C, I.A, LineNo))
        return;
      Emit();
      return;
    }
    if (C.consumeWord("make_symbolic")) {
      I.Op = Opcode::MakeSymbolic;
      if (!C.consume('%')) {
        error(LineNo, "expected a local after make_symbolic");
        return;
      }
      I.Dst = localIdOrError(F, C.ident(), LineNo);
      if (I.Dst < 0 || !C.quoted(I.Message)) {
        error(LineNo, "malformed make_symbolic");
        return;
      }
      Emit();
      return;
    }
    if (C.consumeWord("call")) {
      parseCallTail(M, F, C, I, -1, LineNo, Emit);
      return;
    }

    // Assignment-shaped instructions: `%dst = ...` or a store
    // `%arr[idx] = value`.
    if (!C.consume('%')) {
      error(LineNo, "unrecognized instruction");
      return;
    }
    std::string DstName = C.ident();
    int DstId = localIdOrError(F, DstName, LineNo);
    if (DstId < 0)
      return;

    if (C.consume('[')) { // Store.
      I.Op = Opcode::Store;
      I.ArrayLocal = DstId;
      if (!parseOperand(F, C, I.A, LineNo) || !C.consume(']') ||
          !C.consume('=') || !parseOperand(F, C, I.B, LineNo))
        return;
      Emit();
      return;
    }
    if (!C.consume('=')) {
      error(LineNo, "expected '=' in instruction");
      return;
    }

    if (C.consumeWord("call")) {
      parseCallTail(M, F, C, I, DstId, LineNo, Emit);
      return;
    }

    // UnOp / BinOp mnemonics come before plain operands (Copy/Load).
    if (C.peek() != '%' && !std::isdigit(static_cast<unsigned char>(
                               C.peek()))) {
      std::string Word = C.ident();
      ExprKind UK = unOpKind(Word);
      if (UK != ExprKind::Constant) {
        I.Op = Opcode::UnOp;
        I.SubKind = UK;
        I.Dst = DstId;
        if (!parseOperand(F, C, I.A, LineNo))
          return;
        Emit();
        return;
      }
      ExprKind BK = binOpKind(Word);
      if (BK == ExprKind::Constant) {
        error(LineNo, "unknown operation '" + Word + "'");
        return;
      }
      I.Op = Opcode::BinOp;
      I.SubKind = BK;
      I.Dst = DstId;
      if (!parseOperand(F, C, I.A, LineNo) || !C.consume(',') ||
          !parseOperand(F, C, I.B, LineNo))
        return;
      Emit();
      return;
    }

    // Copy (`%x = op`) or Load (`%x = %arr[op]`).
    if (C.peek() == '%') {
      LineCursor Probe = C;
      Probe.consume('%');
      std::string SrcName = Probe.ident();
      if (Probe.consume('[')) { // Load.
        C = Probe;
        I.Op = Opcode::Load;
        I.Dst = DstId;
        I.ArrayLocal = localIdOrError(F, SrcName, LineNo);
        if (I.ArrayLocal < 0 || !parseOperand(F, C, I.A, LineNo) ||
            !C.consume(']'))
          return;
        Emit();
        return;
      }
    }
    I.Op = Opcode::Copy;
    I.Dst = DstId;
    if (!parseOperand(F, C, I.A, LineNo))
      return;
    Emit();
  }

  template <typename EmitFn>
  void parseCallTail(Module &M, Function &F, LineCursor &C, Instr &I,
                     int DstId, size_t LineNo, EmitFn Emit) {
    I.Op = Opcode::Call;
    I.Dst = DstId;
    std::string Callee = C.ident();
    I.Callee = M.findFunction(Callee);
    if (!I.Callee) {
      error(LineNo, "unknown function '" + Callee + "'");
      return;
    }
    if (!C.consume('(')) {
      error(LineNo, "expected '(' after callee");
      return;
    }
    if (!C.consume(')')) {
      do {
        Operand Arg;
        if (!parseOperand(F, C, Arg, LineNo))
          return;
        I.Args.push_back(Arg);
      } while (C.consume(','));
      if (!C.consume(')')) {
        error(LineNo, "expected ')' after call arguments");
        return;
      }
    }
    Emit();
  }

  std::vector<std::string> Lines;
  std::vector<std::string> Errors;
};

} // namespace

IRParseResult symmerge::parseIR(std::string_view Text, bool Verify) {
  return IRParserImpl(Text).run(Verify);
}
