//===- Verifier.cpp - IR well-formedness checks -----------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <sstream>

using namespace symmerge;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run(bool RequireMain) {
    if (RequireMain) {
      const Function *Main = M.findFunction("main");
      if (!Main)
        error("module has no main function");
      else if (!Main->isVoid() || Main->numParams() != 0)
        error("main must be void and take no parameters");
    }
    for (const auto &F : M.functions())
      verifyFunction(*F);
    return std::move(Errors);
  }

private:
  void error(const std::string &Msg) { Errors.push_back(Msg); }

  void errorIn(const Function &F, const BasicBlock *BB,
               const std::string &Msg) {
    std::ostringstream OS;
    OS << F.name();
    if (BB)
      OS << ':' << BB->name();
    OS << ": " << Msg;
    Errors.push_back(OS.str());
  }

  /// Width of a scalar operand; 0 and an error if not scalar-typed.
  unsigned operandWidth(const Function &F, const BasicBlock *BB,
                        const Operand &Op) {
    switch (Op.K) {
    case Operand::Kind::None:
      errorIn(F, BB, "missing operand");
      return 0;
    case Operand::Kind::Const:
      if (Op.Width < 1 || Op.Width > 64)
        errorIn(F, BB, "constant operand has invalid width");
      return Op.Width;
    case Operand::Kind::Local: {
      if (Op.LocalId < 0 ||
          Op.LocalId >= static_cast<int>(F.locals().size())) {
        errorIn(F, BB, "operand local id out of range");
        return 0;
      }
      const Local &L = F.local(Op.LocalId);
      if (!L.Ty.isInt()) {
        errorIn(F, BB, "array local %" + L.Name + " used as a scalar");
        return 0;
      }
      return L.Ty.Width;
    }
    }
    return 0;
  }

  /// Checks that \p Dst names a scalar local of width \p Width (if nonzero).
  void checkDst(const Function &F, const BasicBlock *BB, int Dst,
                unsigned Width) {
    if (Dst < 0 || Dst >= static_cast<int>(F.locals().size())) {
      errorIn(F, BB, "destination local id out of range");
      return;
    }
    const Local &L = F.local(Dst);
    if (!L.Ty.isInt()) {
      errorIn(F, BB, "destination %" + L.Name + " is not scalar");
      return;
    }
    if (Width && L.Ty.Width != Width)
      errorIn(F, BB, "destination %" + L.Name + " width mismatch");
  }

  void verifyFunction(const Function &F) {
    if (F.numBlocks() == 0) {
      errorIn(F, nullptr, "function has no blocks");
      return;
    }
    for (const auto &BB : F.blocks())
      verifyBlock(F, *BB);
  }

  void verifyBlock(const Function &F, const BasicBlock &BB) {
    const auto &Instrs = BB.instructions();
    if (Instrs.empty()) {
      errorIn(F, &BB, "empty basic block");
      return;
    }
    if (!Instrs.back().isTerminator())
      errorIn(F, &BB, "block does not end in a terminator");
    for (size_t I = 0; I + 1 < Instrs.size(); ++I)
      if (Instrs[I].isTerminator())
        errorIn(F, &BB, "terminator in the middle of a block");
    for (const Instr &I : Instrs)
      verifyInstr(F, &BB, I);
  }

  void verifyInstr(const Function &F, const BasicBlock *BB, const Instr &I) {
    switch (I.Op) {
    case Opcode::BinOp: {
      if (!isBinaryKind(I.SubKind)) {
        errorIn(F, BB, "binop with non-binary sub-opcode");
        return;
      }
      unsigned WA = operandWidth(F, BB, I.A);
      unsigned WB = operandWidth(F, BB, I.B);
      if (WA && WB && WA != WB)
        errorIn(F, BB, "binop operand width mismatch");
      checkDst(F, BB, I.Dst, isComparisonKind(I.SubKind) ? 1 : WA);
      break;
    }
    case Opcode::UnOp: {
      unsigned WA = operandWidth(F, BB, I.A);
      switch (I.SubKind) {
      case ExprKind::Not:
      case ExprKind::Neg:
        checkDst(F, BB, I.Dst, WA);
        break;
      case ExprKind::ZExt:
      case ExprKind::SExt:
      case ExprKind::Trunc: {
        checkDst(F, BB, I.Dst, 0);
        if (I.Dst < 0 || I.Dst >= static_cast<int>(F.locals().size()))
          return;
        unsigned WD = F.local(I.Dst).Ty.Width;
        bool Widening = I.SubKind != ExprKind::Trunc;
        if (WA && ((Widening && WD < WA) || (!Widening && WD > WA)))
          errorIn(F, BB, "cast width direction mismatch");
        break;
      }
      default:
        errorIn(F, BB, "unop with invalid sub-opcode");
      }
      break;
    }
    case Opcode::Copy: {
      unsigned WA = operandWidth(F, BB, I.A);
      checkDst(F, BB, I.Dst, WA);
      break;
    }
    case Opcode::Load:
    case Opcode::Store: {
      if (I.ArrayLocal < 0 ||
          I.ArrayLocal >= static_cast<int>(F.locals().size()) ||
          !F.local(I.ArrayLocal).Ty.isArray()) {
        errorIn(F, BB, "load/store needs an array local");
        return;
      }
      unsigned ElemW = F.local(I.ArrayLocal).Ty.Width;
      operandWidth(F, BB, I.A); // Index: any scalar width.
      if (I.Op == Opcode::Load) {
        checkDst(F, BB, I.Dst, ElemW);
      } else {
        unsigned WV = operandWidth(F, BB, I.B);
        if (WV && WV != ElemW)
          errorIn(F, BB, "store value width mismatch");
      }
      break;
    }
    case Opcode::Call: {
      if (!I.Callee) {
        errorIn(F, BB, "call with null callee");
        return;
      }
      const Function &Callee = *I.Callee;
      if (I.Args.size() != Callee.numParams()) {
        errorIn(F, BB, "call argument count mismatch for " + Callee.name());
        return;
      }
      for (unsigned K = 0; K < Callee.numParams(); ++K) {
        const Type &PT = Callee.local(K).Ty;
        const Operand &Arg = I.Args[K];
        if (PT.isArray()) {
          if (!Arg.isLocal() ||
              Arg.LocalId >= static_cast<int>(F.locals().size()) ||
              !F.local(Arg.LocalId).Ty.isArray())
            errorIn(F, BB, "array parameter needs an array argument");
          else if (F.local(Arg.LocalId).Ty.Width != PT.Width)
            errorIn(F, BB, "array argument element width mismatch");
        } else {
          unsigned WA = operandWidth(F, BB, Arg);
          if (WA && WA != PT.Width)
            errorIn(F, BB, "scalar argument width mismatch");
        }
      }
      if (Callee.isVoid()) {
        if (I.Dst >= 0)
          errorIn(F, BB, "void call cannot have a destination");
      } else if (I.Dst >= 0) {
        checkDst(F, BB, I.Dst, Callee.returnType().Width);
      }
      break;
    }
    case Opcode::Ret:
      if (F.isVoid()) {
        if (!I.A.isNone())
          errorIn(F, BB, "void function returns a value");
      } else {
        unsigned WA = operandWidth(F, BB, I.A);
        if (WA && WA != F.returnType().Width)
          errorIn(F, BB, "return width mismatch");
      }
      break;
    case Opcode::Br: {
      unsigned WA = operandWidth(F, BB, I.A);
      if (WA && WA != 1)
        errorIn(F, BB, "branch condition must have width 1");
      if (!I.Target1 || !I.Target2)
        errorIn(F, BB, "branch with missing target");
      break;
    }
    case Opcode::Jump:
      if (!I.Target1)
        errorIn(F, BB, "jump with missing target");
      break;
    case Opcode::Assert:
    case Opcode::Assume: {
      unsigned WA = operandWidth(F, BB, I.A);
      if (WA && WA != 1)
        errorIn(F, BB, "assert/assume condition must have width 1");
      break;
    }
    case Opcode::Halt:
      break;
    case Opcode::MakeSymbolic:
      if (I.Dst < 0 || I.Dst >= static_cast<int>(F.locals().size()))
        errorIn(F, BB, "make_symbolic target out of range");
      else if (I.Message.empty())
        errorIn(F, BB, "make_symbolic needs a name");
      break;
    case Opcode::Print:
      operandWidth(F, BB, I.A);
      break;
    }
  }

  const Module &M;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> symmerge::verifyModule(const Module &M,
                                                bool RequireMain) {
  return VerifierImpl(M).run(RequireMain);
}
