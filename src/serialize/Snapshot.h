//===- Snapshot.h - Whole-run checkpoint format -----------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps `RunSnapshot` (core/Checkpoint.h) to and from the versioned
/// binary checkpoint format, and provides the atomic file helpers the
/// CLI uses (write-temp-then-rename, so a crash mid-write never leaves a
/// half-checkpoint behind).
///
/// Format v1, in order:
///   u32 magic "SMSN" · u32 version · u16 endian mark 0xFEFF · u16 zero
///   u64 program hash (hashString of the module's printed form)
///   expression table: the FULL ExprContext in creation order, so local
///     ids equal context ids and a restore into a fresh context recreates
///     every node with its original id (merge-canonical disjunct order
///     tie-breaks on those ids — this is what makes `--workers=1` resume
///     bit-identical)
///   u64 next state id · u32 partitions
///   EngineStats (every counter, fixed order)
///   accepted tests · coverage counters · frontier states · searcher
///     cursors
///
/// The decoder validates everything against the module it restores into:
/// unknown functions/blocks, out-of-range locals, non-canonical
/// expressions, or trailing bytes are structured errors, never UB. Any
/// format change must bump `SnapshotVersion` — the golden-snapshot test
/// fails otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SERIALIZE_SNAPSHOT_H
#define SYMMERGE_SERIALIZE_SNAPSHOT_H

#include "core/Checkpoint.h"
#include "serialize/Codec.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace symmerge {

class ExprContext;
class Module;

namespace serialize {

/// "SMSN" as a little-endian u32.
constexpr uint32_t SnapshotMagic = 0x4E534D53u;
constexpr uint32_t SnapshotVersion = 4;

/// "SMSB" (state batch) and "SMRD" (result delta) as little-endian u32s:
/// the two record kinds the distributed fabric ships between processes.
constexpr uint32_t StateBatchMagic = 0x42534D53u;
constexpr uint32_t ResultDeltaMagic = 0x44524D53u;

/// Canonical program identity: hashString over the module's printed form.
uint64_t programHash(const Module &M);

/// Serializes \p Snap. \p Ctx must be the context every expression in the
/// snapshot lives in (the whole context is emitted, in id order).
std::vector<uint8_t> encodeSnapshot(const RunSnapshot &Snap,
                                    const ExprContext &Ctx);

/// Structured decode outcome; `Ok == false` carries message + offset.
struct SnapshotDecodeResult {
  bool Ok = true;
  std::string Error;
  size_t Offset = 0;
};

/// Decodes \p Bytes against program \p M, re-interning expressions into
/// \p Ctx. The context must contain nothing beyond what the snapshot's
/// own node prefix recreates (a freshly constructed runner qualifies):
/// every node must come back with its recorded id, or the decode fails.
SnapshotDecodeResult decodeSnapshot(const std::vector<uint8_t> &Bytes,
                                    const Module &M, ExprContext &Ctx,
                                    RunSnapshot &Out);

/// Writes \p Bytes to \p Path atomically: a temp file in the same
/// directory, flushed, then renamed over the target.
bool writeSnapshotFile(const std::string &Path,
                       const std::vector<uint8_t> &Bytes,
                       std::string *ErrorMessage = nullptr);

/// Reads a whole file into \p Out.
bool readSnapshotFile(const std::string &Path, std::vector<uint8_t> &Out,
                      std::string *ErrorMessage = nullptr);

//===----------------------------------------------------------------------===
// Record-level codecs, shared with the distributed fabric (src/dist/)
//===----------------------------------------------------------------------===

/// EngineStats in the fixed v4 field order (append-only; extending
/// EngineStats means appending here AND bumping SnapshotVersion).
void encodeEngineStats(Encoder &E, const EngineStats &S);
void decodeEngineStats(Decoder &D, EngineStats &S);

/// One frontier state / one test case, expressions referenced through the
/// shared table. The same validation discipline as the whole-run snapshot
/// applies: a decode failure is a structured Decoder error, never UB.
void encodeExecutionState(Encoder &E, ExprTableBuilder &Table,
                          const ExecutionState &S);
bool decodeExecutionState(Decoder &D, const Module &M, const ExprTable &Table,
                          ExecutionState &S);
void encodeTestCase(Encoder &E, ExprTableBuilder &Table, const TestCase &T);
bool decodeTestCase(Decoder &D, const Module &M, const ExprTable &Table,
                    TestCase &T);

/// A batch of frontier states shipped to a worker process: the unit of
/// work the distributed frontier router dispatches. Unlike a whole-run
/// snapshot, the expression table is PARTIAL (only nodes the batch's
/// states reach) and decodes by re-interning into a possibly non-fresh
/// context — exactly a worker-migration restore, so state ids must be
/// unique and strictly below NextStateId but need not be dense.
struct StateBatch {
  uint64_t ProgramHash = 0;
  uint64_t NextStateId = 1;
  std::vector<std::unique_ptr<ExecutionState>> States;
};

std::vector<uint8_t> encodeStateBatch(const StateBatch &Batch);

SnapshotDecodeResult decodeStateBatch(const std::vector<uint8_t> &Bytes,
                                      const Module &M, ExprContext &Ctx,
                                      StateBatch &Out);

/// What a worker sends back after a batch lease: counter deltas, the
/// tests and coverage the batch earned, whether the batch ran to
/// exhaustion, and the states still pending when the lease expired (the
/// coordinator re-routes them at the next rebalance round).
struct ResultDelta {
  EngineStats Stats;
  std::vector<TestCase> Tests;
  /// Nonzero per-block entry-count deltas, deterministic module order.
  std::vector<std::pair<const BasicBlock *, uint64_t>> Coverage;
  StateBatch Remaining;
  bool Exhausted = true;
};

std::vector<uint8_t> encodeResultDelta(const ResultDelta &Delta);

SnapshotDecodeResult decodeResultDelta(const std::vector<uint8_t> &Bytes,
                                       const Module &M, ExprContext &Ctx,
                                       ResultDelta &Out);

} // namespace serialize
} // namespace symmerge

#endif // SYMMERGE_SERIALIZE_SNAPSHOT_H
