//===- Snapshot.h - Whole-run checkpoint format -----------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps `RunSnapshot` (core/Checkpoint.h) to and from the versioned
/// binary checkpoint format, and provides the atomic file helpers the
/// CLI uses (write-temp-then-rename, so a crash mid-write never leaves a
/// half-checkpoint behind).
///
/// Format v1, in order:
///   u32 magic "SMSN" · u32 version · u16 endian mark 0xFEFF · u16 zero
///   u64 program hash (hashString of the module's printed form)
///   expression table: the FULL ExprContext in creation order, so local
///     ids equal context ids and a restore into a fresh context recreates
///     every node with its original id (merge-canonical disjunct order
///     tie-breaks on those ids — this is what makes `--workers=1` resume
///     bit-identical)
///   u64 next state id · u32 partitions
///   EngineStats (every counter, fixed order)
///   accepted tests · coverage counters · frontier states · searcher
///     cursors
///
/// The decoder validates everything against the module it restores into:
/// unknown functions/blocks, out-of-range locals, non-canonical
/// expressions, or trailing bytes are structured errors, never UB. Any
/// format change must bump `SnapshotVersion` — the golden-snapshot test
/// fails otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SERIALIZE_SNAPSHOT_H
#define SYMMERGE_SERIALIZE_SNAPSHOT_H

#include "core/Checkpoint.h"
#include "serialize/Codec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace symmerge {

class ExprContext;
class Module;

namespace serialize {

/// "SMSN" as a little-endian u32.
constexpr uint32_t SnapshotMagic = 0x4E534D53u;
constexpr uint32_t SnapshotVersion = 3;

/// Canonical program identity: hashString over the module's printed form.
uint64_t programHash(const Module &M);

/// Serializes \p Snap. \p Ctx must be the context every expression in the
/// snapshot lives in (the whole context is emitted, in id order).
std::vector<uint8_t> encodeSnapshot(const RunSnapshot &Snap,
                                    const ExprContext &Ctx);

/// Structured decode outcome; `Ok == false` carries message + offset.
struct SnapshotDecodeResult {
  bool Ok = true;
  std::string Error;
  size_t Offset = 0;
};

/// Decodes \p Bytes against program \p M, re-interning expressions into
/// \p Ctx. The context must contain nothing beyond what the snapshot's
/// own node prefix recreates (a freshly constructed runner qualifies):
/// every node must come back with its recorded id, or the decode fails.
SnapshotDecodeResult decodeSnapshot(const std::vector<uint8_t> &Bytes,
                                    const Module &M, ExprContext &Ctx,
                                    RunSnapshot &Out);

/// Writes \p Bytes to \p Path atomically: a temp file in the same
/// directory, flushed, then renamed over the target.
bool writeSnapshotFile(const std::string &Path,
                       const std::vector<uint8_t> &Bytes,
                       std::string *ErrorMessage = nullptr);

/// Reads a whole file into \p Out.
bool readSnapshotFile(const std::string &Path, std::vector<uint8_t> &Out,
                      std::string *ErrorMessage = nullptr);

} // namespace serialize
} // namespace symmerge

#endif // SYMMERGE_SERIALIZE_SNAPSHOT_H
