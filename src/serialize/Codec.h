//===- Codec.h - Versioned deterministic binary codec -----------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level layer of the checkpoint format: a little-endian,
/// length-prefixed binary codec plus the shared-structure expression
/// table. Snapshot.h composes these primitives into the full run format.
///
/// Encoding rules (all deterministic — the same value always produces the
/// same bytes, which the golden-format test pins):
///  - integers are fixed-width little-endian (u8/u16/u32/u64),
///  - doubles are their IEEE-754 bit pattern as a u64,
///  - strings and containers carry a u32 element count first.
///
/// Decoding rules (the fuzz suite holds the decoder to these):
///  - the decoder never throws and never crashes: every read checks
///    bounds and every malformed input lands in a sticky fail state with
///    a structured error (message + byte offset);
///  - no length prefix is trusted before it is checked against the bytes
///    actually remaining, so a hostile 0xFFFFFFFF count cannot trigger an
///    allocation larger than the input itself.
///
/// Expression DAGs are serialized as a node table: each distinct node is
/// emitted once (operands before users) and referenced by its local table
/// id. Decoding re-interns every node through ExprContext::mk*, so
/// sharing, canonical folding, and — when decoding a full-context table
/// into a fresh context — the creation-order node ids are all preserved
/// bit-for-bit. A table whose records would fold (i.e. one not produced
/// by our encoder) is rejected as malformed rather than silently
/// re-canonicalized.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SERIALIZE_CODEC_H
#define SYMMERGE_SERIALIZE_CODEC_H

#include "expr/Expr.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace symmerge {

class ExprContext;

namespace serialize {

/// Append-only little-endian byte writer.
class Encoder {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) {
    u8(static_cast<uint8_t>(V));
    u8(static_cast<uint8_t>(V >> 8));
  }
  void u32(uint32_t V) {
    u16(static_cast<uint16_t>(V));
    u16(static_cast<uint16_t>(V >> 16));
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  /// IEEE-754 bit pattern; exact round trip, no text formatting.
  void f64(double V);
  /// u32 byte count followed by the raw bytes.
  void str(const std::string &S);

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked reader over a byte span with a sticky fail state.
class Decoder {
public:
  Decoder(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit Decoder(const std::vector<uint8_t> &Bytes)
      : Decoder(Bytes.data(), Bytes.size()) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();

  /// Reads a u32 element count and validates it against the bytes left:
  /// a well-formed input needs at least \p MinBytesPerElem more bytes per
  /// element, so anything larger is malformed — rejected BEFORE any
  /// allocation proportional to the claimed count.
  uint32_t count(size_t MinBytesPerElem = 1);

  /// Enters the sticky fail state (subsequent reads return zero values).
  /// Always returns false so call sites can `return D.fail(...)`.
  bool fail(const std::string &Message);

  bool failed() const { return Failed; }
  /// True when all input was consumed and nothing failed.
  bool atEnd() const { return !Failed && Pos == Size; }
  size_t position() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

  const std::string &error() const { return Err; }
  size_t errorOffset() const { return ErrOff; }

private:
  bool need(size_t N);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
  size_t ErrOff = 0;
};

/// Collects an expression DAG (or several sharing structure) and emits
/// each distinct node exactly once, operands before users.
class ExprTableBuilder {
public:
  /// Registers \p E (transitively) and returns its local table id.
  uint32_t idOf(ExprRef E);

  /// Every interned node of \p Ctx in creation order, so local ids equal
  /// context ids — the mode snapshots use for bit-identical restore.
  void addFullContext(const ExprContext &Ctx);

  size_t size() const { return Nodes.size(); }

  /// Writes the table: u32 node count, then one record per node.
  void encode(Encoder &E) const;

private:
  std::vector<ExprRef> Nodes;
  std::unordered_map<ExprRef, uint32_t> Ids;
};

/// The decoded counterpart: local table id -> re-interned node.
class ExprTable {
public:
  /// Reads a table and re-interns every node through \p Ctx. With
  /// \p RequireDenseIds, each re-interned node must come back with
  /// id() == local id — the full-context restore contract (the target
  /// context holds nothing beyond what the snapshot's own prefix
  /// recreates); any mismatch is a structured decode error.
  bool decode(Decoder &D, ExprContext &Ctx, bool RequireDenseIds);

  /// Resolves a local id read from \p D; out-of-range ids fail \p D.
  ExprRef at(Decoder &D, uint32_t Id) const;
  /// Reads a u32 local id from \p D and resolves it.
  ExprRef read(Decoder &D) const;

  size_t size() const { return Nodes.size(); }

private:
  std::vector<ExprRef> Nodes;
};

} // namespace serialize
} // namespace symmerge

#endif // SYMMERGE_SERIALIZE_CODEC_H
