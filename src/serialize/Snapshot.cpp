//===- Snapshot.cpp - Whole-run checkpoint format -----------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serialize/Snapshot.h"

#include "expr/ExprContext.h"
#include "ir/IR.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_set>

using namespace symmerge;
using namespace symmerge::serialize;

uint64_t serialize::programHash(const Module &M) {
  return hashString(M.str());
}

//===----------------------------------------------------------------------===
// Encoding
//===----------------------------------------------------------------------===

void serialize::encodeEngineStats(Encoder &E, const EngineStats &S) {
  // Fixed field order; extending EngineStats means appending here AND
  // bumping SnapshotVersion (the golden test enforces the bump).
  E.u64(S.Steps);
  E.u64(S.Forks);
  E.u64(S.Merges);
  E.u64(S.MergedItes);
  E.u64(S.CompletedStates);
  E.f64(S.CompletedMultiplicity);
  E.u64(S.ExactPathsCompleted);
  E.u64(S.Errors);
  E.u64(S.MaxWorklist);
  E.u64(S.FastForwardSelections);
  E.u64(S.FastForwardMerges);
  E.f64(S.WallSeconds);
  E.u8(S.Exhausted ? 1 : 0);
  E.u64(S.SolverQueries);
  E.u64(S.SolverCoreQueries);
  E.f64(S.SolverSeconds);
  E.u64(S.SolverSessions);
  E.u64(S.SolverAssumptionQueries);
  E.u64(S.SolverEncodeCacheHits);
  E.f64(S.SolverEncodeSeconds);
  E.u64(S.SolverVerdictCacheHits);
  E.u64(S.SolverVerdictCacheMisses);
  E.u64(S.SolverVerdictCacheEvictions);
  E.u64(S.SolverGroupSubSessions);
  E.u64(S.SolverGroupMerges);
  E.u64(S.SolverGroupSlicedSolves);
  E.u64(S.SolverModelCacheHits);
  E.u64(S.SolverModelCacheMisses);
  E.u64(S.SolverEvalSatShortcuts);
  E.u64(S.SolverModelCacheEvictions);
  E.u64(S.SolverCoreCacheHits);
  E.u64(S.SolverCoreCacheMisses);
  E.u64(S.SolverCoreSubsumptions);
  E.u64(S.SolverCoreCacheEvictions);
  E.u64(S.SolverCoreCacheProbeVisits);
  E.u64(S.SolverCoreCacheSigSkips);
  E.u64(S.SolverCoreCacheShardSkips);
  E.u64(S.SolverModelCacheSigSkips);
  E.u64(S.SolverPoisonedQueries);
  E.u64(S.SolverPoisonedInserts);
  E.u64(S.SolverPoisonCacheEvictions);
  E.u64(S.SolverUnknownsObserved);
  E.u64(S.TestGenQueued);
  E.u64(S.TestGenSolved);
  E.u64(S.TestGenSkipped);
  E.u64(S.Workers);
  E.u64(S.FrontierSteals);
  E.u64(S.SessionsBuilt);
  E.u64(S.SessionEvictions);
  E.u64(S.SessionSplits);
  E.u64(S.PolicyPicks);
  E.u64(S.PredictorHits);
  E.u64(S.PredictorMisses);
  E.u64(S.TestGenReorderDistance);
  E.u64(S.AdaptiveBudgetBlowups);
  E.u64(S.AdaptiveBudgetRaises);
  E.u32(static_cast<uint32_t>(S.FrontierDepthHighWater.size()));
  for (uint64_t HW : S.FrontierDepthHighWater)
    E.u64(HW);
  // v4: the distributed-fabric block.
  E.u64(S.DistProcesses);
  E.u64(S.DistBatchesShipped);
  E.u64(S.DistBatchesReshipped);
  E.u64(S.DistRebalances);
  E.u64(S.DistWorkerDeaths);
  E.u64(S.DistRemoteCacheHits);
  E.u64(S.DistRemoteCacheMisses);
  E.u64(S.DistRemoteCachePublishes);
  E.f64(S.DistRemoteCacheRttSeconds);
  E.u32(static_cast<uint32_t>(S.DistRemoteCacheRttHisto.size()));
  for (uint64_t B : S.DistRemoteCacheRttHisto)
    E.u64(B);
  E.u32(static_cast<uint32_t>(S.DistProcessStateHighWater.size()));
  for (uint64_t HW : S.DistProcessStateHighWater)
    E.u64(HW);
}

void serialize::decodeEngineStats(Decoder &D, EngineStats &S) {
  S.Steps = D.u64();
  S.Forks = D.u64();
  S.Merges = D.u64();
  S.MergedItes = D.u64();
  S.CompletedStates = D.u64();
  S.CompletedMultiplicity = D.f64();
  S.ExactPathsCompleted = D.u64();
  S.Errors = D.u64();
  S.MaxWorklist = D.u64();
  S.FastForwardSelections = D.u64();
  S.FastForwardMerges = D.u64();
  S.WallSeconds = D.f64();
  S.Exhausted = D.u8() != 0;
  S.SolverQueries = D.u64();
  S.SolverCoreQueries = D.u64();
  S.SolverSeconds = D.f64();
  S.SolverSessions = D.u64();
  S.SolverAssumptionQueries = D.u64();
  S.SolverEncodeCacheHits = D.u64();
  S.SolverEncodeSeconds = D.f64();
  S.SolverVerdictCacheHits = D.u64();
  S.SolverVerdictCacheMisses = D.u64();
  S.SolverVerdictCacheEvictions = D.u64();
  S.SolverGroupSubSessions = D.u64();
  S.SolverGroupMerges = D.u64();
  S.SolverGroupSlicedSolves = D.u64();
  S.SolverModelCacheHits = D.u64();
  S.SolverModelCacheMisses = D.u64();
  S.SolverEvalSatShortcuts = D.u64();
  S.SolverModelCacheEvictions = D.u64();
  S.SolverCoreCacheHits = D.u64();
  S.SolverCoreCacheMisses = D.u64();
  S.SolverCoreSubsumptions = D.u64();
  S.SolverCoreCacheEvictions = D.u64();
  S.SolverCoreCacheProbeVisits = D.u64();
  S.SolverCoreCacheSigSkips = D.u64();
  S.SolverCoreCacheShardSkips = D.u64();
  S.SolverModelCacheSigSkips = D.u64();
  S.SolverPoisonedQueries = D.u64();
  S.SolverPoisonedInserts = D.u64();
  S.SolverPoisonCacheEvictions = D.u64();
  S.SolverUnknownsObserved = D.u64();
  S.TestGenQueued = D.u64();
  S.TestGenSolved = D.u64();
  S.TestGenSkipped = D.u64();
  S.Workers = D.u64();
  S.FrontierSteals = D.u64();
  S.SessionsBuilt = D.u64();
  S.SessionEvictions = D.u64();
  S.SessionSplits = D.u64();
  S.PolicyPicks = D.u64();
  S.PredictorHits = D.u64();
  S.PredictorMisses = D.u64();
  S.TestGenReorderDistance = D.u64();
  S.AdaptiveBudgetBlowups = D.u64();
  S.AdaptiveBudgetRaises = D.u64();
  uint32_t NumHW = D.u32();
  S.FrontierDepthHighWater.clear();
  for (uint32_t I = 0; I < NumHW && !D.failed(); ++I)
    S.FrontierDepthHighWater.push_back(D.u64());
  S.DistProcesses = D.u64();
  S.DistBatchesShipped = D.u64();
  S.DistBatchesReshipped = D.u64();
  S.DistRebalances = D.u64();
  S.DistWorkerDeaths = D.u64();
  S.DistRemoteCacheHits = D.u64();
  S.DistRemoteCacheMisses = D.u64();
  S.DistRemoteCachePublishes = D.u64();
  S.DistRemoteCacheRttSeconds = D.f64();
  uint32_t NumRtt = D.count(8);
  S.DistRemoteCacheRttHisto.clear();
  for (uint32_t I = 0; I < NumRtt && !D.failed(); ++I)
    S.DistRemoteCacheRttHisto.push_back(D.u64());
  uint32_t NumProcHW = D.count(8);
  S.DistProcessStateHighWater.clear();
  for (uint32_t I = 0; I < NumProcHW && !D.failed(); ++I)
    S.DistProcessStateHighWater.push_back(D.u64());
}

namespace {

void encodeLocation(Encoder &E, const Location &L) {
  E.u8(L.Block ? 1 : 0);
  if (!L.Block)
    return;
  E.str(L.Block->parent()->name());
  E.u32(static_cast<uint32_t>(L.Block->id()));
  E.u32(L.Index);
}

/// Resolves a (function name, block id) pair against \p M.
const BasicBlock *decodeBlockRef(Decoder &D, const Module &M,
                                 const std::string &FuncName,
                                 uint32_t BlockId) {
  const Function *F = M.findFunction(FuncName);
  if (!F) {
    D.fail("unknown function '" + FuncName + "'");
    return nullptr;
  }
  if (BlockId >= F->numBlocks()) {
    D.fail("block id out of range in '" + FuncName + "'");
    return nullptr;
  }
  const BasicBlock *BB = F->blocks()[BlockId].get();
  assert(BB->id() == static_cast<int>(BlockId) &&
         "block ids are dense creation-order indexes");
  return BB;
}

bool decodeLocation(Decoder &D, const Module &M, Location &L) {
  if (D.u8() == 0) {
    L = {};
    return !D.failed();
  }
  std::string FuncName = D.str();
  uint32_t BlockId = D.u32();
  uint32_t Index = D.u32();
  if (D.failed())
    return false;
  const BasicBlock *BB = decodeBlockRef(D, M, FuncName, BlockId);
  if (!BB)
    return false;
  if (Index >= BB->instructions().size())
    return D.fail("instruction index out of range");
  L = {BB, Index};
  return true;
}

void encodeExprRef(Encoder &E, ExprTableBuilder &Table, ExprRef Ref) {
  // The caller pre-registered every reachable node, so idOf is a pure
  // lookup here (full-context snapshots register the whole context; the
  // partial-table batch records register each state's reachable set).
  E.u32(Table.idOf(Ref));
}

} // namespace

void serialize::encodeExecutionState(Encoder &E, ExprTableBuilder &Table,
                                     const ExecutionState &S) {
  E.u64(S.Id);
  E.u8(static_cast<uint8_t>(S.Status));
  E.str(S.Error);
  E.f64(S.Multiplicity);
  E.u64(S.Steps);
  E.u32(S.ForkDepth);
  E.u8(S.FastForwarded ? 1 : 0);

  // Arrays first: stack slots reference them by index.
  E.u32(static_cast<uint32_t>(S.Arrays.size()));
  for (const ArrayObject &A : S.Arrays) {
    E.u8(static_cast<uint8_t>(A.ElemWidth));
    E.u32(static_cast<uint32_t>(A.Cells.size()));
    for (ExprRef Cell : A.Cells)
      encodeExprRef(E, Table, Cell);
  }

  E.u32(static_cast<uint32_t>(S.Stack.size()));
  for (const StackFrame &F : S.Stack) {
    E.str(F.F->name());
    E.u32(static_cast<uint32_t>(F.Scalars.size()));
    for (size_t I = 0; I < F.Scalars.size(); ++I) {
      E.u8(F.Scalars[I] ? 1 : 0);
      if (F.Scalars[I])
        encodeExprRef(E, Table, F.Scalars[I]);
      E.u32(static_cast<uint32_t>(F.ArrayIds[I]));
    }
    E.u8(F.RetBlock ? 1 : 0);
    if (F.RetBlock) {
      E.u32(static_cast<uint32_t>(F.RetBlock->id()));
      E.u32(F.RetIndex);
      E.u32(static_cast<uint32_t>(F.RetDst));
    }
  }

  // Current location: block id within the top frame's function.
  E.u32(static_cast<uint32_t>(S.Loc.Block->id()));
  E.u32(S.Loc.Index);

  E.u32(static_cast<uint32_t>(S.PC.size()));
  for (ExprRef C : S.PC)
    encodeExprRef(E, Table, C);

  E.u32(static_cast<uint32_t>(S.History.size()));
  for (uint64_t H : S.History)
    E.u64(H);

  // std::map iterates in key order: deterministic bytes for free.
  E.u32(static_cast<uint32_t>(S.SymCounts.size()));
  for (const auto &[Name, Count] : S.SymCounts) {
    E.str(Name);
    E.u32(static_cast<uint32_t>(Count));
  }

  E.u32(static_cast<uint32_t>(S.ShadowPaths.size()));
  for (const auto &Path : S.ShadowPaths) {
    E.u32(static_cast<uint32_t>(Path.size()));
    for (ExprRef C : Path)
      encodeExprRef(E, Table, C);
  }
}

bool serialize::decodeExecutionState(Decoder &D, const Module &M,
                                     const ExprTable &Table,
                                     ExecutionState &S) {
  S.Id = D.u64();
  uint8_t RawStatus = D.u8();
  if (RawStatus > static_cast<uint8_t>(StateStatus::Dead))
    return D.fail("invalid state status");
  S.Status = static_cast<StateStatus>(RawStatus);
  // Only live frontier states are checkpointed; terminal states were
  // finalized into tests before capture.
  if (S.Status != StateStatus::Running)
    return D.fail("frontier state is not running");
  S.Error = D.str();
  S.Multiplicity = D.f64();
  if (D.failed())
    return false;
  if (!std::isfinite(S.Multiplicity) || S.Multiplicity <= 0)
    return D.fail("state multiplicity is not a positive finite value");
  S.Steps = D.u64();
  S.ForkDepth = D.u32();
  S.FastForwarded = D.u8() != 0;

  uint32_t NumArrays = D.count(5);
  if (D.failed())
    return false;
  S.Arrays.resize(NumArrays);
  for (ArrayObject &A : S.Arrays) {
    A.ElemWidth = D.u8();
    if (!(A.ElemWidth == 1 || A.ElemWidth == 8 || A.ElemWidth == 16 ||
          A.ElemWidth == 32 || A.ElemWidth == 64))
      return D.fail("invalid array element width");
    uint32_t NumCells = D.count(4);
    if (D.failed())
      return false;
    A.Cells.resize(NumCells);
    for (ExprRef &Cell : A.Cells) {
      Cell = Table.read(D);
      if (!Cell)
        return false;
      if (Cell->width() != A.ElemWidth)
        return D.fail("array cell width mismatch");
    }
  }

  uint32_t NumFrames = D.count(9);
  if (D.failed())
    return false;
  if (NumFrames == 0)
    return D.fail("state with an empty call stack");
  S.Stack.resize(NumFrames);
  for (uint32_t K = 0; K < NumFrames; ++K) {
    StackFrame &F = S.Stack[K];
    std::string FuncName = D.str();
    if (D.failed())
      return false;
    F.F = M.findFunction(FuncName);
    if (!F.F)
      return D.fail("unknown function '" + FuncName + "'");
    uint32_t NumSlots = D.count(5);
    if (D.failed())
      return false;
    if (NumSlots != F.F->locals().size())
      return D.fail("frame slot count does not match function locals");
    F.Scalars.resize(NumSlots);
    F.ArrayIds.resize(NumSlots);
    for (uint32_t I = 0; I < NumSlots; ++I) {
      bool HasExpr = D.u8() != 0;
      if (HasExpr) {
        F.Scalars[I] = Table.read(D);
        if (!F.Scalars[I])
          return false;
      }
      int ArrayId = static_cast<int>(D.u32());
      if (D.failed())
        return false;
      F.ArrayIds[I] = ArrayId;
      const Local &L = F.F->locals()[I];
      if (L.Ty.isArray()) {
        if (HasExpr || ArrayId < 0 ||
            ArrayId >= static_cast<int>(S.Arrays.size()))
          return D.fail("array local slot malformed");
        if (S.Arrays[ArrayId].ElemWidth != L.Ty.Width ||
            S.Arrays[ArrayId].Cells.size() != L.Ty.ArraySize)
          return D.fail("array local shape mismatch");
      } else {
        if (!HasExpr || ArrayId != -1)
          return D.fail("scalar local slot malformed");
        if (F.Scalars[I]->width() != L.Ty.Width)
          return D.fail("scalar local width mismatch");
      }
    }
    if (D.u8() != 0) {
      if (K == 0)
        return D.fail("outermost frame has return linkage");
      uint32_t BlockId = D.u32();
      F.RetIndex = D.u32();
      F.RetDst = static_cast<int>(D.u32());
      if (D.failed())
        return false;
      // The return block lives in the CALLER's function.
      const Function *Caller = S.Stack[K - 1].F;
      if (BlockId >= Caller->numBlocks())
        return D.fail("return block id out of range");
      F.RetBlock = Caller->blocks()[BlockId].get();
      if (F.RetIndex >= F.RetBlock->instructions().size())
        return D.fail("return instruction index out of range");
      if (F.RetDst < -1 ||
          F.RetDst >= static_cast<int>(Caller->locals().size()))
        return D.fail("return destination local out of range");
    } else if (K != 0) {
      return D.fail("inner frame without return linkage");
    }
  }

  uint32_t BlockId = D.u32();
  uint32_t Index = D.u32();
  if (D.failed())
    return false;
  const Function *Top = S.Stack.back().F;
  if (BlockId >= Top->numBlocks())
    return D.fail("state location block id out of range");
  S.Loc.Block = Top->blocks()[BlockId].get();
  if (Index >= S.Loc.Block->instructions().size())
    return D.fail("state location index out of range");
  S.Loc.Index = Index;

  uint32_t NumConjuncts = D.count(4);
  if (D.failed())
    return false;
  S.PC.resize(NumConjuncts);
  for (ExprRef &C : S.PC) {
    C = Table.read(D);
    if (!C)
      return false;
    if (C->width() != 1)
      return D.fail("path-condition conjunct is not width 1");
  }

  uint32_t NumHist = D.count(8);
  if (D.failed())
    return false;
  S.History.clear();
  for (uint32_t I = 0; I < NumHist; ++I)
    S.History.push_back(D.u64());

  uint32_t NumSym = D.count(8);
  if (D.failed())
    return false;
  S.SymCounts.clear();
  for (uint32_t I = 0; I < NumSym; ++I) {
    std::string Name = D.str();
    uint32_t Count = D.u32();
    if (D.failed())
      return false;
    if (!S.SymCounts.emplace(Name, static_cast<int>(Count)).second)
      return D.fail("duplicate symbolic-name counter");
  }

  uint32_t NumShadow = D.count(4);
  if (D.failed())
    return false;
  S.ShadowPaths.resize(NumShadow);
  for (auto &Path : S.ShadowPaths) {
    uint32_t Len = D.count(4);
    if (D.failed())
      return false;
    Path.resize(Len);
    for (ExprRef &C : Path) {
      C = Table.read(D);
      if (!C)
        return false;
      if (C->width() != 1)
        return D.fail("shadow-path conjunct is not width 1");
    }
  }
  return !D.failed();
}

void serialize::encodeTestCase(Encoder &E, ExprTableBuilder &Table,
                               const TestCase &T) {
  E.u8(static_cast<uint8_t>(T.Kind));
  E.str(T.Message);
  encodeLocation(E, T.Where);
  E.f64(T.Multiplicity);
  // VarAssignment iterates an unordered_map: sort by variable name so
  // the same test always encodes to the same bytes.
  std::vector<std::pair<ExprRef, uint64_t>> Inputs(T.Inputs.values().begin(),
                                                   T.Inputs.values().end());
  std::sort(Inputs.begin(), Inputs.end(), [](const auto &A, const auto &B) {
    return A.first->varName() < B.first->varName();
  });
  E.u32(static_cast<uint32_t>(Inputs.size()));
  for (const auto &[Var, Value] : Inputs) {
    encodeExprRef(E, Table, Var);
    E.u64(Value);
  }
}

bool serialize::decodeTestCase(Decoder &D, const Module &M,
                               const ExprTable &Table, TestCase &T) {
  uint8_t RawKind = D.u8();
  if (RawKind > static_cast<uint8_t>(TestKind::OutOfBounds))
    return D.fail("invalid test kind");
  T.Kind = static_cast<TestKind>(RawKind);
  T.Message = D.str();
  if (!decodeLocation(D, M, T.Where))
    return false;
  T.Multiplicity = D.f64();
  uint32_t NumInputs = D.count(12);
  if (D.failed())
    return false;
  for (uint32_t I = 0; I < NumInputs; ++I) {
    ExprRef Var = Table.read(D);
    uint64_t Value = D.u64();
    if (D.failed())
      return false;
    if (Var->kind() != ExprKind::Var)
      return D.fail("test input key is not a variable");
    T.Inputs.set(Var, Value);
  }
  return true;
}

std::vector<uint8_t> serialize::encodeSnapshot(const RunSnapshot &Snap,
                                               const ExprContext &Ctx) {
  Encoder E;
  E.u32(SnapshotMagic);
  E.u32(SnapshotVersion);
  E.u16(0xFEFF); // Byte-order mark: reads back as 0xFFFE on a BE decoder.
  E.u16(0);
  E.u64(Snap.ProgramHash);

  ExprTableBuilder Table;
  Table.addFullContext(Ctx);
  Table.encode(E);

  E.u64(Snap.NextStateId);
  E.u32(Snap.Partitions);
  encodeEngineStats(E, Snap.Stats);

  E.u32(static_cast<uint32_t>(Snap.Tests.size()));
  for (const TestCase &T : Snap.Tests)
    encodeTestCase(E, Table, T);

  E.u32(static_cast<uint32_t>(Snap.Coverage.size()));
  for (const auto &[BB, Count] : Snap.Coverage) {
    E.str(BB->parent()->name());
    E.u32(static_cast<uint32_t>(BB->id()));
    E.u64(Count);
  }

  E.u32(static_cast<uint32_t>(Snap.Frontier.size()));
  for (const RunSnapshot::Entry &Ent : Snap.Frontier) {
    E.u32(Ent.Partition);
    E.u64(Ent.LocationRank);
    encodeExecutionState(E, Table, *Ent.State);
  }

  E.u32(static_cast<uint32_t>(Snap.Cursors.size()));
  for (const auto &Cursor : Snap.Cursors) {
    E.u32(static_cast<uint32_t>(Cursor.size()));
    for (uint64_t W : Cursor)
      E.u64(W);
  }
  return E.take();
}

SnapshotDecodeResult serialize::decodeSnapshot(
    const std::vector<uint8_t> &Bytes, const Module &M, ExprContext &Ctx,
    RunSnapshot &Out) {
  Decoder D(Bytes);
  auto Error = [&](const std::string &Fallback) {
    SnapshotDecodeResult R;
    R.Ok = false;
    R.Error = D.failed() ? D.error() : Fallback;
    R.Offset = D.failed() ? D.errorOffset() : D.position();
    return R;
  };

  if (D.u32() != SnapshotMagic || D.failed()) {
    D.fail("not a SymMerge snapshot (bad magic)");
    return Error("bad magic");
  }
  uint32_t Version = D.u32();
  if (Version != SnapshotVersion || D.failed()) {
    D.fail("unsupported snapshot version " + std::to_string(Version));
    return Error("bad version");
  }
  if (D.u16() != 0xFEFF || D.failed()) {
    D.fail("byte-order mark mismatch");
    return Error("byte-order mark mismatch");
  }
  if (D.u16() != 0 || D.failed()) {
    D.fail("reserved header field is nonzero");
    return Error("bad header");
  }
  Out.ProgramHash = D.u64();
  if (Out.ProgramHash != programHash(M)) {
    D.fail("snapshot was taken against a different program");
    return Error("program hash mismatch");
  }

  ExprTable Table;
  if (!Table.decode(D, Ctx, /*RequireDenseIds=*/true))
    return Error("malformed expression table");

  Out.NextStateId = D.u64();
  Out.Partitions = D.u32();
  if (D.failed())
    return Error("truncated header");
  if (Out.Partitions == 0 || Out.Partitions > 4096)
    return (void)D.fail("implausible partition count"),
           Error("implausible partition count");
  decodeEngineStats(D, Out.Stats);
  if (D.failed())
    return Error("truncated stats");

  uint32_t NumTests = D.count(22);
  if (D.failed())
    return Error("malformed test list");
  Out.Tests.resize(NumTests);
  for (TestCase &T : Out.Tests)
    if (!decodeTestCase(D, M, Table, T))
      return Error("malformed test case");

  uint32_t NumCov = D.count(16);
  if (D.failed())
    return Error("malformed coverage list");
  Out.Coverage.clear();
  Out.Coverage.reserve(NumCov);
  for (uint32_t I = 0; I < NumCov; ++I) {
    std::string FuncName = D.str();
    uint32_t BlockId = D.u32();
    uint64_t Count = D.u64();
    if (D.failed())
      return Error("malformed coverage entry");
    const BasicBlock *BB = decodeBlockRef(D, M, FuncName, BlockId);
    if (!BB)
      return Error("malformed coverage entry");
    if (Count == 0)
      return (void)D.fail("zero coverage count"),
             Error("zero coverage count");
    Out.Coverage.emplace_back(BB, Count);
  }

  uint32_t NumStates = D.count(32);
  if (D.failed())
    return Error("malformed frontier");
  Out.Frontier.clear();
  Out.Frontier.reserve(NumStates);
  std::unordered_set<uint64_t> SeenIds;
  for (uint32_t I = 0; I < NumStates; ++I) {
    RunSnapshot::Entry Ent;
    Ent.Partition = D.u32();
    Ent.LocationRank = D.u64();
    if (D.failed())
      return Error("malformed frontier entry");
    if (Ent.Partition >= Out.Partitions)
      return (void)D.fail("frontier partition out of range"),
             Error("frontier partition out of range");
    Ent.State = std::make_unique<ExecutionState>();
    if (!decodeExecutionState(D, M, Table, *Ent.State))
      return Error("malformed frontier state");
    // The engine's Owned map keys on state id, and the id allocator
    // resumes at NextStateId: ids must be unique and strictly below it.
    if (!SeenIds.insert(Ent.State->Id).second)
      return (void)D.fail("duplicate frontier state id"),
             Error("duplicate frontier state id");
    if (Ent.State->Id >= Out.NextStateId)
      return (void)D.fail("frontier state id at or above the allocator"),
             Error("frontier state id at or above the allocator");
    Out.Frontier.push_back(std::move(Ent));
  }

  uint32_t NumCursors = D.count(4);
  if (D.failed())
    return Error("malformed cursor list");
  Out.Cursors.clear();
  Out.Cursors.resize(NumCursors);
  for (auto &Cursor : Out.Cursors) {
    uint32_t Len = D.count(8);
    if (D.failed())
      return Error("malformed cursor");
    Cursor.resize(Len);
    for (uint64_t &W : Cursor)
      W = D.u64();
  }

  if (D.failed())
    return Error("truncated snapshot");
  if (!D.atEnd()) {
    D.fail("trailing bytes after snapshot");
    return Error("trailing bytes after snapshot");
  }
  return {};
}

//===----------------------------------------------------------------------===
// Distributed-fabric records: state batches and result deltas
//===----------------------------------------------------------------------===

namespace {

/// Registers every expression a state reaches so the batch's partial
/// table is complete before any record encodes (encodeExprRef then only
/// looks ids up).
void registerStateExprs(ExprTableBuilder &Table, const ExecutionState &S) {
  for (const ArrayObject &A : S.Arrays)
    for (ExprRef Cell : A.Cells)
      Table.idOf(Cell);
  for (const StackFrame &F : S.Stack)
    for (ExprRef Scalar : F.Scalars)
      if (Scalar)
        Table.idOf(Scalar);
  for (ExprRef C : S.PC)
    Table.idOf(C);
  for (const auto &Path : S.ShadowPaths)
    for (ExprRef C : Path)
      Table.idOf(C);
}

void registerTestExprs(ExprTableBuilder &Table, const TestCase &T) {
  for (const auto &[Var, Value] : T.Inputs.values()) {
    (void)Value;
    Table.idOf(Var);
  }
}

void encodeRecordHeader(Encoder &E, uint32_t Magic, uint64_t ProgramHash) {
  E.u32(Magic);
  E.u32(SnapshotVersion);
  E.u16(0xFEFF);
  E.u16(0);
  E.u64(ProgramHash);
}

/// Shared header validation for the two dist record kinds. On failure the
/// decoder carries the error; the caller converts it to a
/// SnapshotDecodeResult.
bool decodeRecordHeader(Decoder &D, uint32_t Magic, const char *KindName,
                        const Module &M) {
  if (D.u32() != Magic || D.failed())
    return D.fail(std::string("not a SymMerge ") + KindName +
                  " record (bad magic)");
  uint32_t Version = D.u32();
  if (Version != SnapshotVersion || D.failed())
    return D.fail("unsupported record version " + std::to_string(Version));
  if (D.u16() != 0xFEFF || D.failed())
    return D.fail("byte-order mark mismatch");
  if (D.u16() != 0 || D.failed())
    return D.fail("reserved header field is nonzero");
  uint64_t Hash = D.u64();
  if (D.failed())
    return false;
  if (Hash != programHash(M))
    return D.fail("record was taken against a different program");
  return true;
}

/// The state-list payload both record kinds share: allocator watermark
/// plus a counted list of states with snapshot-grade id validation.
bool decodeStateList(Decoder &D, const Module &M, const ExprTable &Table,
                     StateBatch &Out) {
  Out.NextStateId = D.u64();
  uint32_t NumStates = D.count(32);
  if (D.failed())
    return false;
  Out.States.clear();
  Out.States.reserve(NumStates);
  std::unordered_set<uint64_t> SeenIds;
  for (uint32_t I = 0; I < NumStates; ++I) {
    auto S = std::make_unique<ExecutionState>();
    if (!decodeExecutionState(D, M, Table, *S))
      return false;
    if (!SeenIds.insert(S->Id).second)
      return D.fail("duplicate batch state id");
    if (S->Id >= Out.NextStateId)
      return D.fail("batch state id at or above the allocator");
    Out.States.push_back(std::move(S));
  }
  return true;
}

SnapshotDecodeResult decodeResultOf(const Decoder &D,
                                    const std::string &Fallback) {
  SnapshotDecodeResult R;
  R.Ok = false;
  R.Error = D.failed() ? D.error() : Fallback;
  R.Offset = D.failed() ? D.errorOffset() : D.position();
  return R;
}

} // namespace

std::vector<uint8_t> serialize::encodeStateBatch(const StateBatch &Batch) {
  Encoder E;
  encodeRecordHeader(E, StateBatchMagic, Batch.ProgramHash);

  // Partial table: just what the batch's states reach, registered in
  // state order so identical batches encode to identical bytes.
  ExprTableBuilder Table;
  for (const auto &S : Batch.States)
    registerStateExprs(Table, *S);
  Table.encode(E);

  E.u64(Batch.NextStateId);
  E.u32(static_cast<uint32_t>(Batch.States.size()));
  for (const auto &S : Batch.States)
    encodeExecutionState(E, Table, *S);
  return E.take();
}

SnapshotDecodeResult serialize::decodeStateBatch(
    const std::vector<uint8_t> &Bytes, const Module &M, ExprContext &Ctx,
    StateBatch &Out) {
  Decoder D(Bytes);
  if (!decodeRecordHeader(D, StateBatchMagic, "state-batch", M))
    return decodeResultOf(D, "bad state-batch header");
  Out.ProgramHash = programHash(M);

  // Batches re-intern into whatever context the receiving runner already
  // has (a worker that served earlier batches is not fresh), so ids are
  // local to the record, not dense context ids.
  ExprTable Table;
  if (!Table.decode(D, Ctx, /*RequireDenseIds=*/false))
    return decodeResultOf(D, "malformed expression table");

  if (!decodeStateList(D, M, Table, Out))
    return decodeResultOf(D, "malformed state list");
  if (D.failed())
    return decodeResultOf(D, "truncated state batch");
  if (!D.atEnd()) {
    D.fail("trailing bytes after state batch");
    return decodeResultOf(D, "trailing bytes after state batch");
  }
  return {};
}

std::vector<uint8_t> serialize::encodeResultDelta(const ResultDelta &Delta) {
  Encoder E;
  // Remaining.ProgramHash identifies the program for the whole record;
  // the worker sets it from the Init frame's hash.
  encodeRecordHeader(E, ResultDeltaMagic, Delta.Remaining.ProgramHash);

  // One shared partial table covers the tests' input variables and the
  // leftover states.
  ExprTableBuilder Table;
  for (const TestCase &T : Delta.Tests)
    registerTestExprs(Table, T);
  for (const auto &S : Delta.Remaining.States)
    registerStateExprs(Table, *S);
  Table.encode(E);

  encodeEngineStats(E, Delta.Stats);

  E.u32(static_cast<uint32_t>(Delta.Tests.size()));
  for (const TestCase &T : Delta.Tests)
    encodeTestCase(E, Table, T);

  E.u32(static_cast<uint32_t>(Delta.Coverage.size()));
  for (const auto &[BB, Count] : Delta.Coverage) {
    E.str(BB->parent()->name());
    E.u32(static_cast<uint32_t>(BB->id()));
    E.u64(Count);
  }

  E.u64(Delta.Remaining.NextStateId);
  E.u32(static_cast<uint32_t>(Delta.Remaining.States.size()));
  for (const auto &S : Delta.Remaining.States)
    encodeExecutionState(E, Table, *S);

  E.u8(Delta.Exhausted ? 1 : 0);
  return E.take();
}

SnapshotDecodeResult serialize::decodeResultDelta(
    const std::vector<uint8_t> &Bytes, const Module &M, ExprContext &Ctx,
    ResultDelta &Out) {
  Decoder D(Bytes);
  if (!decodeRecordHeader(D, ResultDeltaMagic, "result-delta", M))
    return decodeResultOf(D, "bad result-delta header");
  Out.Remaining.ProgramHash = programHash(M);

  ExprTable Table;
  if (!Table.decode(D, Ctx, /*RequireDenseIds=*/false))
    return decodeResultOf(D, "malformed expression table");

  decodeEngineStats(D, Out.Stats);
  if (D.failed())
    return decodeResultOf(D, "truncated stats");

  uint32_t NumTests = D.count(22);
  if (D.failed())
    return decodeResultOf(D, "malformed test list");
  Out.Tests.resize(NumTests);
  for (TestCase &T : Out.Tests)
    if (!decodeTestCase(D, M, Table, T))
      return decodeResultOf(D, "malformed test case");

  uint32_t NumCov = D.count(16);
  if (D.failed())
    return decodeResultOf(D, "malformed coverage list");
  Out.Coverage.clear();
  Out.Coverage.reserve(NumCov);
  for (uint32_t I = 0; I < NumCov; ++I) {
    std::string FuncName = D.str();
    uint32_t BlockId = D.u32();
    uint64_t Count = D.u64();
    if (D.failed())
      return decodeResultOf(D, "malformed coverage entry");
    const BasicBlock *BB = decodeBlockRef(D, M, FuncName, BlockId);
    if (!BB)
      return decodeResultOf(D, "malformed coverage entry");
    if (Count == 0) {
      D.fail("zero coverage count");
      return decodeResultOf(D, "zero coverage count");
    }
    Out.Coverage.emplace_back(BB, Count);
  }

  if (!decodeStateList(D, M, Table, Out.Remaining))
    return decodeResultOf(D, "malformed remaining-state list");

  uint8_t RawExhausted = D.u8();
  if (D.failed())
    return decodeResultOf(D, "truncated result delta");
  if (RawExhausted > 1) {
    D.fail("invalid exhausted flag");
    return decodeResultOf(D, "invalid exhausted flag");
  }
  Out.Exhausted = RawExhausted == 1;
  if (!D.atEnd()) {
    D.fail("trailing bytes after result delta");
    return decodeResultOf(D, "trailing bytes after result delta");
  }
  return {};
}

//===----------------------------------------------------------------------===
// File helpers
//===----------------------------------------------------------------------===

bool serialize::writeSnapshotFile(const std::string &Path,
                                  const std::vector<uint8_t> &Bytes,
                                  std::string *ErrorMessage) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (ErrorMessage)
      *ErrorMessage = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  bool Ok = Bytes.empty() ||
            std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    if (ErrorMessage)
      *ErrorMessage = "short write to '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (ErrorMessage)
      *ErrorMessage = "cannot rename '" + Tmp + "' to '" + Path + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool serialize::readSnapshotFile(const std::string &Path,
                                 std::vector<uint8_t> &Out,
                                 std::string *ErrorMessage) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (ErrorMessage)
      *ErrorMessage = "cannot open '" + Path + "'";
    return false;
  }
  Out.clear();
  uint8_t Buf[64 << 10];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok && ErrorMessage)
    *ErrorMessage = "read error on '" + Path + "'";
  return Ok;
}
