//===- Codec.cpp - Versioned deterministic binary codec ----------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serialize/Codec.h"

#include "expr/ExprContext.h"

#include <cstring>

using namespace symmerge;
using namespace symmerge::serialize;

//===----------------------------------------------------------------------===
// Encoder
//===----------------------------------------------------------------------===

void Encoder::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "IEEE-754 double expected");
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void Encoder::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

//===----------------------------------------------------------------------===
// Decoder
//===----------------------------------------------------------------------===

bool Decoder::need(size_t N) {
  if (Failed)
    return false;
  if (Size - Pos < N)
    return fail("truncated input"), false;
  return true;
}

bool Decoder::fail(const std::string &Message) {
  if (!Failed) {
    Failed = true;
    Err = Message;
    ErrOff = Pos;
  }
  return false;
}

uint8_t Decoder::u8() {
  if (!need(1))
    return 0;
  return Data[Pos++];
}

uint16_t Decoder::u16() {
  if (!need(2))
    return 0;
  uint16_t V = static_cast<uint16_t>(Data[Pos]) |
               static_cast<uint16_t>(Data[Pos + 1]) << 8;
  Pos += 2;
  return V;
}

uint32_t Decoder::u32() {
  if (!need(4))
    return 0;
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | Data[Pos + I];
  Pos += 4;
  return V;
}

uint64_t Decoder::u64() {
  if (!need(8))
    return 0;
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | Data[Pos + I];
  Pos += 8;
  return V;
}

double Decoder::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string Decoder::str() {
  uint32_t N = u32();
  if (Failed)
    return {};
  if (Size - Pos < N) {
    fail("string length exceeds remaining input");
    return {};
  }
  std::string S(reinterpret_cast<const char *>(Data + Pos), N);
  Pos += N;
  return S;
}

uint32_t Decoder::count(size_t MinBytesPerElem) {
  uint32_t N = u32();
  if (Failed)
    return 0;
  if (MinBytesPerElem == 0)
    MinBytesPerElem = 1;
  if (static_cast<uint64_t>(N) * MinBytesPerElem > Size - Pos) {
    fail("element count exceeds remaining input");
    return 0;
  }
  return N;
}

//===----------------------------------------------------------------------===
// Expression tables
//===----------------------------------------------------------------------===

namespace {

unsigned operandCountForKind(ExprKind K) {
  switch (K) {
  case ExprKind::Constant:
  case ExprKind::Var:
    return 0;
  case ExprKind::Not:
  case ExprKind::Neg:
  case ExprKind::ZExt:
  case ExprKind::SExt:
  case ExprKind::Trunc:
    return 1;
  case ExprKind::Ite:
    return 3;
  default:
    return 2; // All binary arithmetic, bitwise, and comparison kinds.
  }
}

bool validWidth(unsigned W) {
  return W == 1 || W == 8 || W == 16 || W == 32 || W == 64;
}

constexpr uint8_t MaxKind = static_cast<uint8_t>(ExprKind::Ite);

} // namespace

uint32_t ExprTableBuilder::idOf(ExprRef E) {
  assert(E && "cannot serialize a null expression");
  auto It = Ids.find(E);
  if (It != Ids.end())
    return It->second;
  // Iterative post-order: operands get ids before their users, matching
  // the decoder's operands-already-decoded invariant.
  std::vector<std::pair<ExprRef, unsigned>> Work{{E, 0}};
  while (!Work.empty()) {
    auto &[Cur, NextOp] = Work.back();
    if (Ids.count(Cur)) {
      Work.pop_back();
      continue;
    }
    if (NextOp < Cur->numOperands()) {
      ExprRef Op = Cur->operand(NextOp++);
      if (!Ids.count(Op))
        Work.emplace_back(Op, 0);
      continue;
    }
    Ids.emplace(Cur, static_cast<uint32_t>(Nodes.size()));
    Nodes.push_back(Cur);
    Work.pop_back();
  }
  return Ids.at(E);
}

void ExprTableBuilder::addFullContext(const ExprContext &Ctx) {
  for (ExprRef E : Ctx.nodesById()) {
    assert(E && Ids.count(E) == 0 && "dense id table expected");
    Ids.emplace(E, static_cast<uint32_t>(Nodes.size()));
    Nodes.push_back(E);
  }
}

void ExprTableBuilder::encode(Encoder &E) const {
  E.u32(static_cast<uint32_t>(Nodes.size()));
  for (ExprRef N : Nodes) {
    E.u8(static_cast<uint8_t>(N->kind()));
    E.u8(static_cast<uint8_t>(N->width()));
    switch (N->kind()) {
    case ExprKind::Constant:
      E.u64(N->constantValue());
      break;
    case ExprKind::Var:
      E.str(N->varName());
      break;
    default:
      for (unsigned I = 0; I < N->numOperands(); ++I)
        E.u32(Ids.at(N->operand(I)));
      break;
    }
  }
}

bool ExprTable::decode(Decoder &D, ExprContext &Ctx, bool RequireDenseIds) {
  // Each record is at least kind + width + a 4-byte payload... except a
  // zero-length Var name record (kind, width, u32 len) is 6 bytes and a
  // unary record is also 6; use the smallest possible record size.
  uint32_t N = D.count(/*MinBytesPerElem=*/6);
  if (D.failed())
    return false;
  Nodes.clear();
  Nodes.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint8_t RawKind = D.u8();
    unsigned Width = D.u8();
    if (D.failed())
      return false;
    if (RawKind > MaxKind)
      return D.fail("invalid expression kind");
    ExprKind Kind = static_cast<ExprKind>(RawKind);
    if (!validWidth(Width))
      return D.fail("invalid expression width");

    // Resolve operands first; every reference must point backwards.
    ExprRef Ops[3] = {nullptr, nullptr, nullptr};
    unsigned NumOps = operandCountForKind(Kind);
    for (unsigned J = 0; J < NumOps; ++J) {
      uint32_t Ref = D.u32();
      if (D.failed())
        return false;
      if (Ref >= Nodes.size())
        return D.fail("expression operand references a later node");
      Ops[J] = Nodes[Ref];
    }

    // Validate the mk* preconditions explicitly: in release builds the
    // factory's asserts compile out, so a hostile record must be caught
    // here, never inside ExprContext.
    ExprRef Built = nullptr;
    switch (Kind) {
    case ExprKind::Constant: {
      uint64_t Value = D.u64();
      if (D.failed())
        return false;
      if (Value != ExprContext::maskToWidth(Value, Width))
        return D.fail("constant value not masked to its width");
      Built = Ctx.mkConst(Value, Width);
      break;
    }
    case ExprKind::Var: {
      std::string Name = D.str();
      if (D.failed())
        return false;
      if (Name.empty())
        return D.fail("variable with empty name");
      if (ExprRef Existing = Ctx.lookupVar(Name))
        if (Existing->width() != Width)
          return D.fail("variable width conflicts with interned variable");
      Built = Ctx.mkVar(Name, Width);
      break;
    }
    case ExprKind::Not:
    case ExprKind::Neg:
      if (Ops[0]->width() != Width)
        return D.fail("unary operator width mismatch");
      Built = Kind == ExprKind::Not ? Ctx.mkNot(Ops[0]) : Ctx.mkNeg(Ops[0]);
      break;
    case ExprKind::ZExt:
    case ExprKind::SExt:
      if (Width < Ops[0]->width())
        return D.fail("extension narrows its operand");
      Built = Kind == ExprKind::ZExt ? Ctx.mkZExt(Ops[0], Width)
                                     : Ctx.mkSExt(Ops[0], Width);
      break;
    case ExprKind::Trunc:
      if (Width > Ops[0]->width())
        return D.fail("truncation widens its operand");
      Built = Ctx.mkTrunc(Ops[0], Width);
      break;
    case ExprKind::Ite:
      if (Ops[0]->width() != 1)
        return D.fail("ite condition is not width 1");
      if (Ops[1]->width() != Ops[2]->width() || Ops[1]->width() != Width)
        return D.fail("ite arm width mismatch");
      Built = Ctx.mkIte(Ops[0], Ops[1], Ops[2]);
      break;
    default: // Binary.
      if (Ops[0]->width() != Ops[1]->width())
        return D.fail("binary operand width mismatch");
      if (isComparisonKind(Kind) ? Width != 1 : Ops[0]->width() != Width)
        return D.fail("binary result width mismatch");
      Built = Ctx.mkBinOp(Kind, Ops[0], Ops[1]);
      break;
    }

    // The factory folds reducible nodes; our encoder only ever emits
    // published irreducible nodes, so a fold here means the table was
    // not produced by this codec.
    if (Built->kind() != Kind || Built->width() != Width)
      return D.fail("expression record is not canonical");
    if (RequireDenseIds && Built->id() != I)
      return D.fail("expression id mismatch on dense restore");
    Nodes.push_back(Built);
  }
  return true;
}

ExprRef ExprTable::at(Decoder &D, uint32_t Id) const {
  if (Id >= Nodes.size()) {
    D.fail("expression reference out of range");
    return nullptr;
  }
  return Nodes[Id];
}

ExprRef ExprTable::read(Decoder &D) const {
  uint32_t Id = D.u32();
  if (D.failed())
    return nullptr;
  return at(D, Id);
}
