//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-watched-literal propagation, first-UIP conflict analysis, VSIDS
/// branching with phase saving, Luby restarts, and activity-based learnt
/// clause reduction. It is the decision procedure underneath the bitvector
/// bitblaster and plays the role STP played for the paper's prototype.
///
/// The solver is incremental: clauses and variables may be added between
/// solves, and solveAssuming() decides the instance under a conjunction of
/// assumption literals without committing them, MiniSat-style — the
/// assumptions occupy the lowest decision levels, every solve backtracks
/// to the root on exit, and learnt clauses, variable activities, and saved
/// phases all carry over to the next call. This is what lets a solver
/// session decide both polarities of a branch condition against one
/// persistent encoding of the path condition.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_SAT_H
#define SYMMERGE_SOLVER_SAT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace symmerge {
namespace sat {

/// Boolean variable index, 0-based.
using Var = int;

/// A literal: variable with polarity, encoded as 2*var+sign.
struct Lit {
  int X = -2;

  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }
};

inline Lit mkLit(Var V, bool Negated = false) {
  assert(V >= 0 && "invalid variable");
  return Lit{V + V + static_cast<int>(Negated)};
}
inline Lit operator~(Lit L) { return Lit{L.X ^ 1}; }
inline bool sign(Lit L) { return L.X & 1; }
inline Var var(Lit L) { return L.X >> 1; }
inline int toInt(Lit L) { return L.X; }

/// Undefined literal sentinel.
constexpr Lit LitUndef{-2};

/// Three-valued assignment.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lboolFrom(bool B) { return B ? LBool::True : LBool::False; }
inline LBool negate(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// Counters reported by the solver for the evaluation harnesses.
struct SatStats {
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Conflicts = 0;
  uint64_t Learnt = 0;
  uint64_t Restarts = 0;
  uint64_t PurgedSatisfied = 0; ///< Clauses (learnt or problem) dropped
                                ///< because a root-level literal (e.g. a
                                ///< popped session guard) satisfies them
                                ///< forever.
};

/// CDCL solver. Usage: newVar()/addClause() to build the instance, then
/// solve() or solveAssuming(). The instance stays usable after every
/// solve: more variables and clauses may be added and further solve calls
/// issued, reusing the learnt-clause database and branching heuristics
/// accumulated so far.
class SatSolver {
public:
  SatSolver();
  ~SatSolver();
  SatSolver(const SatSolver &) = delete;
  SatSolver &operator=(const SatSolver &) = delete;

  /// Creates a new variable and returns its index.
  Var newVar();

  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause (disjunction of literals). Returns false if the solver
  /// is already in an unsatisfiable state after adding.
  bool addClause(std::vector<Lit> Lits);

  /// Convenience for unit/binary/ternary clauses.
  bool addClause(Lit A) { return addClause(std::vector<Lit>{A}); }
  bool addClause(Lit A, Lit B) { return addClause(std::vector<Lit>{A, B}); }
  bool addClause(Lit A, Lit B, Lit C) {
    return addClause(std::vector<Lit>{A, B, C});
  }

  /// Runs the CDCL search. Returns true if satisfiable. \p ConflictBudget
  /// bounds the number of conflicts (0 = unlimited); if exhausted, returns
  /// false with budgetExceeded() set.
  bool solve(uint64_t ConflictBudget = 0) { return solveAssuming({}, ConflictBudget); }

  /// Decides the instance under the given assumption literals without
  /// permanently asserting them. Returns true if satisfiable together
  /// with the assumptions. On unsatisfiability caused by the assumptions,
  /// failedAssumptions() names the subset responsible; on
  /// assumption-independent unsatisfiability it is empty and the solver
  /// stays unsat forever (okay() turns false). Learnt clauses, activities
  /// and phases persist across calls.
  bool solveAssuming(const std::vector<Lit> &Assumptions,
                     uint64_t ConflictBudget = 0);

  /// True if the last solve() stopped on the conflict or wall-clock
  /// budget rather than proving unsatisfiability.
  bool budgetExceeded() const { return BudgetExceeded; }

  /// Bounds every subsequent solve to \p Seconds of wall-clock search
  /// time (0 = unlimited). Checked at conflict and restart boundaries —
  /// cheap enough for the hot loop, tight enough that a pathological
  /// query cannot hang a worker. On expiry the solve returns false with
  /// budgetExceeded() set, exactly like the conflict budget.
  void setWallBudgetSeconds(double Seconds) { WallBudgetSeconds = Seconds; }

  /// After an unsatisfiable solveAssuming(): the subset of the assumption
  /// literals whose conjunction the instance refutes. Empty when the
  /// instance is unsatisfiable regardless of assumptions.
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// False once the clause database itself (independent of assumptions)
  /// has been proven unsatisfiable.
  bool okay() const { return Ok; }

  /// Number of problem (non-learnt) clauses currently attached.
  size_t numClauses() const { return Clauses.size(); }
  /// Number of learnt clauses currently attached.
  size_t numLearnts() const { return Learnts.size(); }

  /// Byte-accurate footprint of the clause databases: per-clause headers
  /// plus the literal arrays (by capacity) plus the two-watched-literal
  /// watcher arrays. This is what session eviction watermarks should
  /// track — raw clause counts miss both clause length and the watcher
  /// overhead, which together dominate a long-lived instance's memory.
  size_t memoryFootprintBytes() const;

  /// Removes every learnt clause permanently satisfied by a root-level
  /// assignment — e.g. garbage left behind by a session's popped scope
  /// guards. Must be called between solves (decision level 0). Returns
  /// the number of clauses removed; reduceDB() applies the same purge
  /// mid-search.
  size_t purgeSatisfiedLearnts();

  /// Like purgeSatisfiedLearnts(), but sweeps the problem clauses too.
  /// This is what actually reclaims a popped session scope: pop()
  /// asserts the guard's negation as a root unit, which permanently
  /// satisfies every (~guard v lit) clause the scope asserted. Must be
  /// called between solves (decision level 0). Returns the total number
  /// of clauses removed from both databases.
  size_t purgeSatisfiedClauses();

  /// Model value of \p V after a satisfiable solve().
  LBool modelValue(Var V) const {
    assert(V < static_cast<int>(Model.size()) && "variable out of range");
    return Model[V];
  }

  const SatStats &stats() const { return Stats; }

private:
  struct Clause;
  struct Watcher {
    Clause *C;
    Lit Blocker;
  };

  LBool value(Lit L) const {
    LBool V = Assigns[var(L)];
    return sign(L) ? negate(V) : V;
  }
  LBool value(Var V) const { return Assigns[V]; }

  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  void enqueue(Lit L, Clause *Reason);
  Clause *propagate();
  void analyze(Clause *Conflict, std::vector<Lit> &Learnt, int &OutLevel);
  void analyzeFinal(Lit P);
  bool litRedundant(Lit L, uint32_t AbstractLevels);
  void backtrack(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void bumpClause(Clause *C);
  void decayActivities();
  void reduceDB();
  void attachClause(Clause *C);
  void detachClause(Clause *C);
  bool satisfiedAtRoot(const Clause *C) const;
  size_t purgeSatisfiedIn(std::vector<Clause *> &Db);
  static uint64_t luby(uint64_t I);

  // Indexed max-heap over variable activities.
  void heapInsert(Var V);
  void heapDecrease(Var V); // Activity increased; sift up.
  Var heapPop();
  bool heapContains(Var V) const { return HeapIndex[V] >= 0; }
  void siftUp(int I);
  void siftDown(int I);

  std::vector<Clause *> Clauses;
  std::vector<Clause *> Learnts;
  std::vector<std::vector<Watcher>> Watches; // Indexed by literal.
  std::vector<LBool> Assigns;
  std::vector<LBool> Model;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  std::vector<Clause *> Reasons;
  std::vector<int> Levels;
  std::vector<double> Activity;
  std::vector<bool> Polarity; // Saved phases.
  std::vector<Var> Heap;
  std::vector<int> HeapIndex;
  std::vector<uint8_t> Seen;
  size_t PropagationHead = 0;
  double VarInc = 1.0;
  double ClauseInc = 1.0;
  bool Ok = true;
  bool BudgetExceeded = false;
  double WallBudgetSeconds = 0; ///< 0 = unlimited.
  std::vector<Lit> FailedAssumptions;
  SatStats Stats;
};

} // namespace sat
} // namespace symmerge

#endif // SYMMERGE_SOLVER_SAT_H
