//===- CoreCache.cpp - Shared UNSAT-core subsumption cache -------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/CoreCache.h"

#include "solver/BitBlaster.h"
#include "solver/Sat.h"
#include "solver/Solver.h"

#include <algorithm>

using namespace symmerge;

CoreCache::CoreCache(const CoreCacheOptions &Opts)
    : ProbeLimit(std::max(1u, Opts.ProbeLimit)),
      MinimizeSolves(Opts.MinimizeSolves),
      MinimizeConflicts(Opts.MinimizeConflicts),
      SignatureFilter(Opts.SignatureFilter) {
  size_t NumShards = 1;
  while (NumShards < std::max(1u, Opts.Shards))
    NumShards *= 2;
  // Same shard-collapse rule as the verdict/model caches: a tiny
  // MaxEntries spread over many shards would round each slice up and
  // inflate the real bound.
  while (Opts.MaxEntries != 0 && NumShards > 1 &&
         Opts.MaxEntries / NumShards < 4)
    NumShards /= 2;
  Shards = std::vector<Shard>(NumShards);
  MaxPerShard = Opts.MaxEntries == 0
                    ? 0
                    : std::max<size_t>(1, Opts.MaxEntries / NumShards);
}

bool CoreCache::probe(const std::vector<uint64_t> &Key) {
  return probeImpl(Key, footprintSignature(Key), /*CountStats=*/true);
}

bool CoreCache::probe(const std::vector<uint64_t> &Key, uint64_t KeySig) {
  return probeImpl(Key, KeySig, /*CountStats=*/true);
}

bool CoreCache::probeImpl(const std::vector<uint64_t> &Key, uint64_t KeySig,
                          bool CountStats) {
  // Degenerate probes (nothing asserted) are not counted: only real
  // candidate searches are hits or misses.
  if (Key.empty())
    return false;
  SolverQueryStats &Stats = solverStats();
  // Collect up to ProbeLimit candidates, newest-first per id list,
  // deduplicated across lists; the subset checks happen OUTSIDE the
  // shard locks (entries are immutable once published). Only lists of
  // the probe's own ids are walked: a core disjoint from the probe set
  // cannot be a subset of it.
  std::vector<std::pair<std::shared_ptr<const Entry>, uint64_t>> Candidates;
  Candidates.reserve(ProbeLimit);
  for (uint64_t Id : Key) {
    if (Candidates.size() >= ProbeLimit)
      break;
    Shard &S = shardFor(Id);
    if (SignatureFilter) {
      // Bloom pre-check without the lock: a clear bit proves this id
      // indexes nothing in the shard.
      uint64_t H = hashMix(Id);
      if ((S.Bloom[bloomWord(H)].load(std::memory_order_relaxed) &
           bloomBit(H)) == 0) {
        if (CountStats)
          ++Stats.CoreCacheShardSkips;
        continue;
      }
    }
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Index.find(Id);
    if (It == S.Index.end())
      continue;
    const std::vector<Ref> &List = It->second.Refs;
    for (size_t I = List.size(); I-- > 0;) {
      if (Candidates.size() >= ProbeLimit)
        break;
      // Signature reject: a core whose footprint has a bit outside the
      // probe's cannot be a subset — skip it without spending a
      // candidate slot or (later) an inclusion scan. Exact keys make
      // this behavior-preserving: the inclusion scan would reject too.
      if (SignatureFilter && (List[I].Sig & ~KeySig) != 0) {
        if (CountStats)
          ++Stats.CoreCacheSigSkips;
        continue;
      }
      const std::shared_ptr<const Entry> &E = List[I].E;
      bool SeenAlready = false;
      for (const auto &[C, CId] : Candidates)
        if (C == E || C->Hash == E->Hash) {
          SeenAlready = true;
          break;
        }
      if (!SeenAlready)
        Candidates.push_back({E, Id});
    }
  }

  for (const auto &[E, Id] : Candidates) {
    if (CountStats)
      ++Stats.CoreCacheProbeVisits;
    // Both vectors are sorted and deduplicated; the cached core subsumes
    // the probe exactly when every one of its constraints is present.
    if (E->Ids.size() > Key.size() ||
        !std::includes(Key.begin(), Key.end(), E->Ids.begin(), E->Ids.end()))
      continue;
    // Touch the hit in the list we drew it from: refresh its generation
    // stamp and move it to the back where probes look first, so a core
    // that keeps refuting queries survives eviction and probe-budget
    // displacement by churn.
    Shard &S = shardFor(Id);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Index.find(Id);
      if (It != S.Index.end()) {
        std::vector<Ref> &List = It->second.Refs;
        for (size_t I = 0; I < List.size(); ++I)
          if (List[I].E == E) {
            List[I].Generation = ++S.Generation;
            std::swap(List[I], List.back());
            break;
          }
      }
    }
    if (CountStats) {
      ++Stats.CoreCacheHits;
      if (E->Ids.size() < Key.size())
        ++Stats.CoreSubsumptions;
    }
    return true;
  }
  if (CountStats)
    ++Stats.CoreCacheMisses;
  // Outside every shard lock, and only for real (counted) probes: let
  // the remote tier look for a subsuming core another process already
  // minimized (installed for future probes; this check solves locally
  // either way).
  if (CountStats && Remote)
    Remote->onCoreMiss(Key);
  return false;
}

bool CoreCache::minimize(std::vector<ExprRef> &Core) const {
  if (Core.size() <= 1)
    return true;
  // Private throwaway instance: each constraint sits behind its own
  // assumption literal, so failedAssumptions() names a per-constraint
  // core — finer than the per-frame granularity sessions extract.
  sat::SatSolver S;
  BitBlaster BB(S);
  std::vector<sat::Lit> Lits;
  Lits.reserve(Core.size());
  for (ExprRef E : Core)
    Lits.push_back(BB.literalFor(E));

  auto MapFailed = [&](std::vector<ExprRef> &Out) {
    // A literal can back several structurally equal constraints only if
    // the caller passed duplicates; Core is deduplicated by publish().
    Out.clear();
    for (sat::Lit L : S.failedAssumptions())
      for (size_t I = 0; I < Lits.size(); ++I)
        if (Lits[I] == L) {
          Out.push_back(Core[I]);
          break;
        }
  };

  // Confirmation solve: refutes the set under per-constraint assumptions
  // and shrinks it to the fine-grained failed set in one step.
  if (S.solveAssuming(Lits, MinimizeConflicts))
    return false; // Satisfiable: the caller's "core" is no core.
  if (S.budgetExceeded())
    return true; // Could not confirm cheaply; keep the coarse core as-is.
  std::vector<ExprRef> Shrunk;
  MapFailed(Shrunk);
  if (!Shrunk.empty())
    Core = std::move(Shrunk);

  // Bounded deletion loop: drop one constraint at a time; an UNSAT
  // all-but-one solve proves the dropped constraint redundant (and its
  // failed set may shed more). SAT or budget-out keeps it.
  unsigned Solves = 0;
  size_t P = 0;
  while (P < Core.size() && Core.size() > 1 && Solves < MinimizeSolves) {
    Lits.clear();
    for (size_t I = 0; I < Core.size(); ++I)
      if (I != P)
        Lits.push_back(BB.literalFor(Core[I]));
    ++Solves;
    if (S.solveAssuming(Lits, MinimizeConflicts) || S.budgetExceeded()) {
      ++P; // Needed (or undecided): keep it.
      continue;
    }
    std::vector<ExprRef> Candidates;
    for (size_t I = 0; I < Core.size(); ++I)
      if (I != P)
        Candidates.push_back(Core[I]);
    std::vector<ExprRef> Next;
    // Map against the all-but-P literal set.
    Core.swap(Candidates);
    std::vector<sat::Lit> CoreLits;
    for (ExprRef E : Core)
      CoreLits.push_back(BB.literalFor(E));
    Lits.swap(CoreLits);
    MapFailed(Next);
    if (!Next.empty())
      Core = std::move(Next);
    // P now indexes the next untested constraint in the shrunk set.
  }
  return true;
}

void CoreCache::publish(const std::vector<ExprRef> &Core) {
  if (Core.empty())
    return;
  // Deduplicate (hash-consing makes ids identity) and normalize.
  std::vector<ExprRef> Uniq;
  {
    std::unordered_set<uint64_t> Seen;
    for (ExprRef E : Core)
      if (Seen.insert(E->id()).second)
        Uniq.push_back(E);
  }
  std::vector<uint64_t> Ids;
  Ids.reserve(Uniq.size());
  for (ExprRef E : Uniq)
    Ids.push_back(E->id());
  std::sort(Ids.begin(), Ids.end());

  // A resident core already subsuming this one makes insertion (and the
  // minimization solves) pointless — the lookup refreshes its recency.
  if (probeImpl(Ids, footprintSignature(Ids), /*CountStats=*/false))
    return;

  if (!minimize(Uniq))
    return; // Re-solve said SAT: never cache an unsound refutation.

  Ids.clear();
  for (ExprRef E : Uniq)
    Ids.push_back(E->id());
  std::sort(Ids.begin(), Ids.end());
  // The minimization solve above re-verified UNSAT (or kept the
  // session-extracted refutation), so the remote tier may serve this
  // core to other processes without its own re-solve.
  if (Remote)
    Remote->onCorePublish(Ids);
  insertEntry(std::move(Ids));
}

void CoreCache::installVerified(const std::vector<ExprRef> &Core) {
  if (Core.empty())
    return;
  std::vector<uint64_t> Ids;
  {
    std::unordered_set<uint64_t> Seen;
    for (ExprRef E : Core)
      if (Seen.insert(E->id()).second)
        Ids.push_back(E->id());
  }
  std::sort(Ids.begin(), Ids.end());
  if (probeImpl(Ids, footprintSignature(Ids), /*CountStats=*/false))
    return; // A resident core already subsumes it.
  insertEntry(std::move(Ids));
}

void CoreCache::insertEntry(std::vector<uint64_t> Ids) {
  uint64_t Hash = hashMix(Ids.size());
  for (uint64_t Id : Ids)
    Hash = hashCombine(Hash, Id);
  uint64_t Sig = footprintSignature(Ids);
  auto E = std::make_shared<const Entry>(Entry{Ids, Hash, Sig});
  uint64_t Evicted = 0;
  for (uint64_t Id : E->Ids) {
    Shard &S = shardFor(Id);
    std::lock_guard<std::mutex> Lock(S.M);
    uint64_t H = hashMix(Id);
    S.Bloom[bloomWord(H)].fetch_or(bloomBit(H), std::memory_order_relaxed);
    IdList &L = S.Index[Id];
    // Per-list content-hash dedup: a core republished because two
    // workers raced miss -> solve -> publish refreshes the resident
    // copy's recency instead of appending a clone.
    if (!L.Hashes.insert(Hash).second) {
      for (size_t I = L.Refs.size(); I-- > 0;)
        if (L.Refs[I].E->Hash == Hash) {
          L.Refs[I].Generation = ++S.Generation;
          std::swap(L.Refs[I], L.Refs.back());
          break;
        }
      continue;
    }
    L.Refs.push_back(Ref{E, ++S.Generation, Sig});
    ++S.RefCount;
    if (MaxPerShard != 0 && S.RefCount > MaxPerShard)
      Evicted += evictOldHalf(S);
  }
  if (Evicted) {
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    solverStats().CoreCacheEvictions += Evicted;
  }
}

uint64_t CoreCache::evictOldHalf(Shard &S) {
  std::vector<uint64_t> Stamps;
  Stamps.reserve(S.RefCount);
  for (const auto &[Id, List] : S.Index)
    for (const Ref &R : List.Refs)
      Stamps.push_back(R.Generation);
  if (Stamps.empty())
    return 0;
  auto Mid = Stamps.begin() + Stamps.size() / 2;
  std::nth_element(Stamps.begin(), Mid, Stamps.end());
  uint64_t Cutoff = *Mid;
  uint64_t Removed = 0;
  for (auto It = S.Index.begin(); It != S.Index.end();) {
    IdList &List = It->second;
    size_t Out = 0;
    for (size_t I = 0; I < List.Refs.size(); ++I) {
      if (List.Refs[I].Generation <= Cutoff) {
        List.Hashes.erase(List.Refs[I].E->Hash);
        ++Removed;
        continue;
      }
      List.Refs[Out++] = std::move(List.Refs[I]);
    }
    List.Refs.resize(Out);
    It = List.Refs.empty() ? S.Index.erase(It) : std::next(It);
  }
  S.RefCount -= Removed;
  // Rebuild the Bloom filter from the surviving ids: eviction may have
  // emptied lists, and the filter must never report a false negative —
  // stale set bits are only a performance leak, missing bits would hide
  // live entries from probes.
  uint64_t Words[8] = {};
  for (const auto &[Id, List] : S.Index) {
    uint64_t H = hashMix(Id);
    Words[bloomWord(H)] |= bloomBit(H);
  }
  for (unsigned W = 0; W < 8; ++W)
    S.Bloom[W].store(Words[W], std::memory_order_relaxed);
  return Removed;
}

size_t CoreCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.RefCount;
  }
  return N;
}

uint64_t CoreCache::evictions() const {
  return Evictions.load(std::memory_order_relaxed);
}

std::shared_ptr<CoreCache>
symmerge::createCoreCache(const CoreCacheOptions &Opts) {
  return std::make_shared<CoreCache>(Opts);
}
