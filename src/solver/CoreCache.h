//===- CoreCache.h - Shared UNSAT-core subsumption cache --------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded concurrent cache of minimized UNSAT cores — the refutation
/// sibling of ModelCache. Where the model cache reuses SAT witnesses (a
/// model of a superset constraint slice satisfies any subset probe), the
/// core cache reuses refutations with the dual subsumption direction: a
/// cached core — a set of constraints that is jointly unsatisfiable — is
/// a *subset* of any query it refutes, so a probe that finds a cached
/// core contained in the current sliced assertion set proves UNSAT with
/// zero SAT calls.
///
/// Keying is by constraint footprint: every core is indexed under each
/// constraint node id it contains (hash-consing makes structurally equal
/// constraints collide on purpose), so a probe walks only the index lists
/// of its own constraint ids — a core it does not intersect can never
/// subsume it. Candidate subset checks are bounded (ProbeLimit), so a
/// miss costs a few sorted-vector inclusion scans, not a cache sweep.
///
/// Publication minimizes first: the session-extracted core (root
/// constraints plus the frames named by SatSolver::failedAssumptions())
/// is re-solved on a private throwaway SAT instance with each constraint
/// behind its own assumption literal — failedAssumptions() then yields a
/// per-constraint core — followed by bounded deletion attempts
/// (MinimizeSolves solves of MinimizeConflicts conflicts each). Smaller
/// cores subsume more future queries; the bound keeps publication from
/// ever re-paying the original solve unboundedly.
///
/// Concurrency and capacity mirror the verdict/model caches: per-shard
/// mutexes, immutable entries behind shared_ptrs, and a generation-LRU
/// that evicts each shard's least-recently-stamped half past its slice
/// of MaxEntries.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_CORECACHE_H
#define SYMMERGE_SOLVER_CORECACHE_H

#include "expr/ExprContext.h"
#include "solver/RemoteHooks.h"
#include "support/Hashing.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace symmerge {

struct CoreCacheOptions {
  /// Total index-entry bound across all shards (a core of K constraints
  /// counts K entries); 0 = unbounded.
  size_t MaxEntries = 1u << 14;
  /// Concurrency shards (rounded up to a power of two).
  unsigned Shards = 16;
  /// Maximum candidate subset checks per probe.
  unsigned ProbeLimit = 8;
  /// Maximum deletion-minimization solve attempts per publish (0 keeps
  /// session-extracted cores as-is, beyond the initial per-constraint
  /// refinement solve).
  unsigned MinimizeSolves = 8;
  /// Conflict budget for each minimization solve. A minimization solve
  /// that exhausts it keeps the candidate constraint conservatively.
  uint64_t MinimizeConflicts = 2000;
  /// O(1) probe pre-filters (behavior-preserving; off = the measurable
  /// baseline): a 64-bit footprint signature per core rejects candidates
  /// that cannot be subsets of the probed set before the sorted
  /// inclusion scan, and a per-shard Bloom filter over indexed
  /// constraint ids skips the shard lock + hash lookup for probe ids
  /// with no index list at all.
  bool SignatureFilter = true;
};

/// Shared concurrent cache of minimized UNSAT cores. Create with
/// createCoreCache() and attach via createCoreSolver(); one cache is
/// shared by every native session of every worker stack.
class CoreCache {
public:
  explicit CoreCache(const CoreCacheOptions &Opts);

  /// Probes for a cached core that is a subset of the probe constraint
  /// set. \p Key is the normalized (sorted, deduplicated) id vector of
  /// the sliced constraint set — the same normalization as
  /// SessionVerdictCache::makeKey, so verdict and core lookups share one
  /// key computation. Returns true when a cached core subsumes the set:
  /// the conjunction is proven UNSAT with zero SAT calls. Counts
  /// CoreCacheHits / CoreCacheMisses / CoreSubsumptions (strict-subset
  /// hits) in the thread-local solver statistics.
  bool probe(const std::vector<uint64_t> &Key);

  /// probe() with the key's footprint signature precomputed by the
  /// caller (sessions compute it once per cache-miss pipeline and thread
  /// it through every probe). \p KeySig must equal
  /// footprintSignature(Key).
  bool probe(const std::vector<uint64_t> &Key, uint64_t KeySig);

  /// Publishes a constraint-level UNSAT core (the conjunction of
  /// \p Core must be unsatisfiable). Minimizes first (see file comment);
  /// a core already subsumed by a resident entry only refreshes that
  /// entry's recency.
  void publish(const std::vector<ExprRef> &Core);

  /// Installs a core that was already minimized and verified by its
  /// publishing process (the remote cache tier's install path): no
  /// minimization re-solve, no remote republish hook. The transport is
  /// trusted — a private in-machine socket pair to a service fed
  /// exclusively by publish()-verified cores — so soundness rests on
  /// the original publisher's re-solve, exactly like a local insert.
  void installVerified(const std::vector<ExprRef> &Core);

  /// Total index entries currently held (for tests and statistics).
  size_t size() const;
  /// Index entries dropped by the generation-LRU capacity bound.
  uint64_t evictions() const;

  /// Attaches (or detaches, with null) the remote cache tier. Counted
  /// probe misses and verified publications notify it outside the shard
  /// locks; callers must quiesce probes/publishes around the transition.
  void setRemote(RemoteCacheHooks *R) { Remote = R; }

private:
  /// One published core, immutable after construction; probes read it
  /// outside the shard lock through the shared_ptr.
  struct Entry {
    std::vector<uint64_t> Ids; ///< Sorted, deduplicated constraint ids.
    uint64_t Hash = 0;         ///< Of Ids (dedup).
    uint64_t Sig = 0;          ///< footprintSignature(Ids).
  };
  struct Ref {
    std::shared_ptr<const Entry> E;
    uint64_t Generation = 0; ///< Shard generation at last access.
    /// Copy of E->Sig: the gather loop rejects non-subset candidates
    /// without dereferencing the entry.
    uint64_t Sig = 0;
  };
  /// One constraint id's index list plus the content-hash set keeping it
  /// duplicate-free (mirrors ModelCache::VarList).
  struct IdList {
    std::vector<Ref> Refs;
    std::unordered_set<uint64_t> Hashes;
  };
  struct Shard {
    mutable std::mutex M;
    /// Constraint id -> cores containing that constraint, most recently
    /// used last (probes walk back-to-front).
    std::unordered_map<uint64_t, IdList> Index;
    size_t RefCount = 0; ///< Sum of Index list sizes (under M).
    uint64_t Generation = 0;
    /// 512-bit Bloom filter over the ids present in Index. Bits are set
    /// under M on insert and rebuilt under M after eviction; probes read
    /// them relaxed BEFORE taking M — a clear bit proves the id has no
    /// list here (never a false negative), a set bit may false-positive
    /// into a locked find that misses. Word/bit positions come from
    /// high hashMix bits, disjoint from the shard-index bits (the low
    /// bits are constant within a shard).
    std::atomic<uint64_t> Bloom[8] = {};

    Shard() = default;
    Shard(Shard &&) noexcept {} // Only moved while empty, at construction.
  };

  static unsigned bloomWord(uint64_t H) { return (H >> 14) & 7; }
  static uint64_t bloomBit(uint64_t H) { return 1ull << ((H >> 8) & 63); }

  Shard &shardFor(uint64_t Id) {
    return Shards[hashMix(Id) & (Shards.size() - 1)];
  }

  /// Shared probe walk. \p CountStats separates caller probes (counted
  /// as hits/misses/subsumptions) from publish()'s pre-insert duplicate
  /// check (not a query, never counted).
  bool probeImpl(const std::vector<uint64_t> &Key, uint64_t KeySig,
                 bool CountStats);

  /// Bounded minimization of \p Core (see file comment). Returns false
  /// when the re-solve found the set satisfiable — an extraction bug
  /// upstream; the caller must then drop the core rather than cache an
  /// unsound refutation.
  bool minimize(std::vector<ExprRef> &Core) const;

  void insertEntry(std::vector<uint64_t> Ids);

  /// Drops the least-recently-stamped half of \p S's entries (caller
  /// holds S.M). Returns the number of index entries removed.
  static uint64_t evictOldHalf(Shard &S);

  std::vector<Shard> Shards;
  size_t MaxPerShard = 0;
  unsigned ProbeLimit = 8;
  unsigned MinimizeSolves = 8;
  uint64_t MinimizeConflicts = 2000;
  bool SignatureFilter = true;
  std::atomic<uint64_t> Evictions{0};
  RemoteCacheHooks *Remote = nullptr;
};

std::shared_ptr<CoreCache> createCoreCache(const CoreCacheOptions &Opts = {});

} // namespace symmerge

#endif // SYMMERGE_SOLVER_CORECACHE_H
