//===- Sat.cpp - CDCL SAT solver implementation ----------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Sat.h"

#include <algorithm>
#include <chrono>

using namespace symmerge;
using namespace symmerge::sat;

struct SatSolver::Clause {
  double Activity = 0.0;
  bool Learnt = false;
  std::vector<Lit> Lits;
};

SatSolver::SatSolver() = default;

SatSolver::~SatSolver() {
  for (Clause *C : Clauses)
    delete C;
  for (Clause *C : Learnts)
    delete C;
}

Var SatSolver::newVar() {
  Var V = numVars();
  Assigns.push_back(LBool::Undef);
  Levels.push_back(-1);
  Reasons.push_back(nullptr);
  Activity.push_back(0.0);
  Polarity.push_back(false);
  Seen.push_back(0);
  HeapIndex.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

size_t SatSolver::memoryFootprintBytes() const {
  auto ClauseBytes = [](const Clause *C) {
    return sizeof(Clause) + C->Lits.capacity() * sizeof(Lit);
  };
  size_t Bytes = 0;
  for (const Clause *C : Clauses)
    Bytes += ClauseBytes(C);
  for (const Clause *C : Learnts)
    Bytes += ClauseBytes(C);
  for (const std::vector<Watcher> &W : Watches)
    Bytes += sizeof(W) + W.capacity() * sizeof(Watcher);
  // Per-variable bookkeeping (assignments, saved model, trail, activity
  // heap, phases). A monolithic instance amortizes these over one big
  // clause database, but per-group sub-sessions each carry their own
  // copy, so a byte-accurate eviction watermark that sums sub-session
  // footprints must see them.
  Bytes += Assigns.capacity() * sizeof(LBool) +
           Model.capacity() * sizeof(LBool) +
           Trail.capacity() * sizeof(Lit) +
           Reasons.capacity() * sizeof(Clause *) +
           Levels.capacity() * sizeof(int) +
           Activity.capacity() * sizeof(double) +
           Polarity.capacity() / 8 + Heap.capacity() * sizeof(Var) +
           HeapIndex.capacity() * sizeof(int) +
           Seen.capacity() * sizeof(uint8_t);
  return Bytes;
}

void SatSolver::attachClause(Clause *C) {
  assert(C->Lits.size() >= 2 && "cannot watch a unit clause");
  Watches[toInt(~C->Lits[0])].push_back({C, C->Lits[1]});
  Watches[toInt(~C->Lits[1])].push_back({C, C->Lits[0]});
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  assert(decisionLevel() == 0 && "clauses must be added at level 0");
  if (!Ok)
    return false;

  // Simplify: sort, dedup, drop false literals, detect tautologies and
  // already-satisfied clauses.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Out;
  Lit Prev = LitUndef;
  for (Lit L : Lits) {
    if (value(L) == LBool::True || L == ~Prev)
      return true; // Satisfied or tautological.
    if (value(L) == LBool::False || L == Prev)
      continue; // False or duplicate literal.
    Out.push_back(L);
    Prev = L;
  }

  if (Out.empty()) {
    Ok = false;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], nullptr);
    Ok = propagate() == nullptr;
    return Ok;
  }
  Clause *C = new Clause();
  C->Lits = std::move(Out);
  Clauses.push_back(C);
  attachClause(C);
  return true;
}

void SatSolver::enqueue(Lit L, Clause *Reason) {
  assert(value(L) == LBool::Undef && "enqueueing an assigned literal");
  Var V = var(L);
  Assigns[V] = lboolFrom(!sign(L));
  Levels[V] = decisionLevel();
  Reasons[V] = Reason;
  Trail.push_back(L);
}

SatSolver::Clause *SatSolver::propagate() {
  while (PropagationHead < Trail.size()) {
    Lit P = Trail[PropagationHead++];
    std::vector<Watcher> &WS = Watches[toInt(P)];
    size_t Kept = 0;
    for (size_t I = 0; I < WS.size(); ++I) {
      ++Stats.Propagations;
      Watcher W = WS[I];
      if (value(W.Blocker) == LBool::True) {
        WS[Kept++] = W;
        continue;
      }
      Clause *C = W.C;
      std::vector<Lit> &L = C->Lits;
      // Normalize so the false literal ~P sits in slot 1.
      if (L[0] == ~P)
        std::swap(L[0], L[1]);
      assert(L[1] == ~P && "watched literal bookkeeping broken");
      if (value(L[0]) == LBool::True) {
        WS[Kept++] = {C, L[0]};
        continue;
      }
      // Look for a replacement watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < L.size(); ++K) {
        if (value(L[K]) != LBool::False) {
          std::swap(L[1], L[K]);
          Watches[toInt(~L[1])].push_back({C, L[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue; // Watcher moved; do not keep here.
      // Clause is unit or conflicting.
      WS[Kept++] = {C, L[0]};
      if (value(L[0]) == LBool::False) {
        // Conflict: keep the remaining watchers and bail out.
        for (size_t K = I + 1; K < WS.size(); ++K)
          WS[Kept++] = WS[K];
        WS.resize(Kept);
        PropagationHead = Trail.size();
        return C;
      }
      enqueue(L[0], C);
    }
    WS.resize(Kept);
  }
  return nullptr;
}

void SatSolver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (heapContains(V))
    heapDecrease(V);
}

void SatSolver::bumpClause(Clause *C) {
  C->Activity += ClauseInc;
  if (C->Activity > 1e20) {
    for (Clause *L : Learnts)
      L->Activity *= 1e-20;
    ClauseInc *= 1e-20;
  }
}

void SatSolver::decayActivities() {
  VarInc /= 0.95;
  ClauseInc /= 0.999;
}

bool SatSolver::litRedundant(Lit L, uint32_t /*AbstractLevels*/) {
  // Basic (local) minimization: a literal is redundant if it was implied by
  // a reason clause whose other literals are all already in the learnt set.
  Clause *Reason = Reasons[var(L)];
  if (!Reason)
    return false;
  for (Lit Q : Reason->Lits) {
    if (var(Q) == var(L))
      continue;
    if (!Seen[var(Q)] && Levels[var(Q)] > 0)
      return false;
  }
  return true;
}

void SatSolver::analyze(Clause *Conflict, std::vector<Lit> &Learnt,
                        int &OutLevel) {
  Learnt.clear();
  Learnt.push_back(LitUndef); // Slot 0 holds the asserting literal.

  int PathCount = 0;
  Lit P = LitUndef;
  int Index = static_cast<int>(Trail.size()) - 1;
  Clause *C = Conflict;

  do {
    assert(C && "null reason during conflict analysis");
    if (C->Learnt)
      bumpClause(C);
    size_t Start = (P == LitUndef) ? 0 : 1;
    for (size_t J = Start; J < C->Lits.size(); ++J) {
      Lit Q = C->Lits[J];
      Var V = var(Q);
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (Levels[V] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked trail literal.
    while (!Seen[var(Trail[Index])])
      --Index;
    P = Trail[Index];
    --Index;
    C = Reasons[var(P)];
    Seen[var(P)] = 0;
    --PathCount;
  } while (PathCount > 0);
  Learnt[0] = ~P;

  // Conflict clause minimization. Keep the pre-minimization literal set so
  // every Seen mark (including those of dropped literals) is cleared below.
  std::vector<Lit> Original = Learnt;
  size_t Kept = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (!litRedundant(Learnt[I], 0))
      Learnt[Kept++] = Learnt[I];
  }
  Learnt.resize(Kept);

  // Find the backtrack level and move a literal of that level to slot 1.
  OutLevel = 0;
  if (Learnt.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Learnt.size(); ++I) {
      if (Levels[var(Learnt[I])] > Levels[var(Learnt[MaxIdx])])
        MaxIdx = I;
    }
    std::swap(Learnt[1], Learnt[MaxIdx]);
    OutLevel = Levels[var(Learnt[1])];
  }

  // Clear the seen marks we left on the learnt literals.
  for (Lit L : Original)
    Seen[var(L)] = 0;
}

void SatSolver::analyzeFinal(Lit P) {
  // \p P is an assumption literal that is currently false. Walk the
  // implication graph backwards from it and collect every assumption
  // (= decision below the assumption levels) its falsification rests on.
  FailedAssumptions.clear();
  FailedAssumptions.push_back(P);
  if (decisionLevel() == 0)
    return; // Refuted by unit propagation alone: P fails by itself.
  Seen[var(P)] = 1;
  for (size_t I = Trail.size(); I-- > static_cast<size_t>(TrailLim[0]);) {
    Var V = var(Trail[I]);
    if (!Seen[V])
      continue;
    if (!Reasons[V]) {
      // A decision below the assumption levels is itself an assumption;
      // the trail holds it with the polarity the caller assumed.
      FailedAssumptions.push_back(Trail[I]);
    } else {
      for (Lit Q : Reasons[V]->Lits) {
        if (Levels[var(Q)] > 0)
          Seen[var(Q)] = 1;
      }
    }
    Seen[V] = 0;
  }
  Seen[var(P)] = 0;
}

void SatSolver::backtrack(int Level) {
  if (decisionLevel() <= Level)
    return;
  size_t Bound = TrailLim[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = var(Trail[I]);
    Polarity[V] = Assigns[V] == LBool::True; // Phase saving.
    Assigns[V] = LBool::Undef;
    Reasons[V] = nullptr;
    Levels[V] = -1;
    if (!heapContains(V))
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(Level);
  PropagationHead = Trail.size();
}

Lit SatSolver::pickBranchLit() {
  while (!Heap.empty()) {
    Var V = heapPop();
    if (Assigns[V] == LBool::Undef)
      return mkLit(V, /*Negated=*/!Polarity[V]);
  }
  return LitUndef;
}

void SatSolver::detachClause(Clause *C) {
  for (int W = 0; W < 2; ++W) {
    std::vector<Watcher> &WS = Watches[toInt(~C->Lits[W])];
    for (size_t K = 0; K < WS.size(); ++K) {
      if (WS[K].C == C) {
        WS[K] = WS.back();
        WS.pop_back();
        break;
      }
    }
  }
}

bool SatSolver::satisfiedAtRoot(const Clause *C) const {
  for (Lit L : C->Lits) {
    if (value(L) == LBool::True && Levels[var(L)] == 0)
      return true;
  }
  return false;
}

void SatSolver::reduceDB() {
  // Keep the more active half of the learnt clauses; never remove clauses
  // that are the reason for a current assignment. Clauses satisfied by a
  // root-level assignment — typically the negated guard of a popped
  // session scope — can never contribute again and are dropped outright,
  // whatever their activity or size.
  std::sort(Learnts.begin(), Learnts.end(),
            [](const Clause *A, const Clause *B) {
              return A->Activity > B->Activity;
            });
  size_t Keep = Learnts.size() / 2;
  std::vector<Clause *> Remaining;
  Remaining.reserve(Learnts.size());
  for (size_t I = 0; I < Learnts.size(); ++I) {
    Clause *C = Learnts[I];
    bool Locked = Reasons[var(C->Lits[0])] == C;
    if (!Locked && satisfiedAtRoot(C)) {
      ++Stats.PurgedSatisfied;
      detachClause(C);
      delete C;
      continue;
    }
    if (I < Keep || Locked || C->Lits.size() <= 2) {
      Remaining.push_back(C);
      continue;
    }
    detachClause(C);
    delete C;
  }
  Learnts = std::move(Remaining);
}

size_t SatSolver::purgeSatisfiedIn(std::vector<Clause *> &Db) {
  assert(decisionLevel() == 0 && "purge must run between solves");
  size_t Kept = 0, Removed = 0;
  for (size_t I = 0; I < Db.size(); ++I) {
    Clause *C = Db[I];
    // A clause that is the reason of a (root-level) assignment stays: the
    // assignment outlives every backtrack and keeps the pointer live.
    bool Locked = Reasons[var(C->Lits[0])] == C;
    if (!Locked && satisfiedAtRoot(C)) {
      detachClause(C);
      delete C;
      ++Removed;
      continue;
    }
    Db[Kept++] = C;
  }
  Db.resize(Kept);
  Stats.PurgedSatisfied += Removed;
  return Removed;
}

size_t SatSolver::purgeSatisfiedLearnts() { return purgeSatisfiedIn(Learnts); }

size_t SatSolver::purgeSatisfiedClauses() {
  return purgeSatisfiedIn(Learnts) + purgeSatisfiedIn(Clauses);
}

uint64_t SatSolver::luby(uint64_t I) {
  // Luby sequence, 0-indexed: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  uint64_t Size = 1, Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) >> 1;
    --Seq;
    I %= Size;
  }
  return 1ULL << Seq;
}

bool SatSolver::solveAssuming(const std::vector<Lit> &Assumptions,
                              uint64_t ConflictBudget) {
  assert(decisionLevel() == 0 && "solve must start at the root");
  BudgetExceeded = false;
  FailedAssumptions.clear();
  if (!Ok)
    return false;

  uint64_t TotalConflicts = 0;
  uint64_t RestartNum = 0;
  std::vector<Lit> Learnt;

  // Wall-clock fence. Reading the clock per conflict would be felt on
  // propagation-heavy instances, so the deadline is checked every 128
  // conflicts and at every restart boundary — granular enough that a
  // blow-up overshoots its budget by at most one conflict batch.
  using WallClock = std::chrono::steady_clock;
  const bool WallBounded = WallBudgetSeconds > 0;
  const WallClock::time_point Deadline =
      WallBounded ? WallClock::now() +
                        std::chrono::duration_cast<WallClock::duration>(
                            std::chrono::duration<double>(WallBudgetSeconds))
                  : WallClock::time_point();
  auto WallExpired = [&] { return WallBounded && WallClock::now() >= Deadline; };

  for (;;) {
    uint64_t RestartLimit = luby(RestartNum) * 100;
    uint64_t RestartConflicts = 0;
    ++RestartNum;
    ++Stats.Restarts;

    for (;;) {
      Clause *Conflict = propagate();
      if (Conflict) {
        ++Stats.Conflicts;
        ++TotalConflicts;
        ++RestartConflicts;
        if (decisionLevel() == 0) {
          // Refuted at the root, independent of any assumptions: the
          // instance is permanently UNSAT.
          Ok = false;
          return false;
        }
        int BackLevel = 0;
        analyze(Conflict, Learnt, BackLevel);
        backtrack(BackLevel);
        if (Learnt.size() == 1) {
          enqueue(Learnt[0], nullptr);
        } else {
          Clause *C = new Clause();
          C->Learnt = true;
          C->Lits = Learnt;
          Learnts.push_back(C);
          ++Stats.Learnt;
          attachClause(C);
          bumpClause(C);
          enqueue(Learnt[0], C);
        }
        decayActivities();
        if (ConflictBudget && TotalConflicts >= ConflictBudget) {
          BudgetExceeded = true;
          backtrack(0);
          return false;
        }
        if ((TotalConflicts & 127) == 0 && WallExpired()) {
          BudgetExceeded = true;
          backtrack(0);
          return false;
        }
        continue;
      }

      // No conflict.
      if (RestartConflicts >= RestartLimit) {
        if (WallExpired()) {
          BudgetExceeded = true;
          backtrack(0);
          return false;
        }
        backtrack(0);
        break; // Restart; the assumptions are re-established below.
      }
      if (Learnts.size() > std::max<size_t>(10000, 2 * Clauses.size()))
        reduceDB();

      // Establish the pending assumptions first, one decision level per
      // assumption (MiniSat's scheme: level I+1 belongs to assumption I,
      // with an empty level when the assumption is already implied).
      Lit Next = LitUndef;
      while (decisionLevel() < static_cast<int>(Assumptions.size())) {
        Lit A = Assumptions[decisionLevel()];
        assert(var(A) < numVars() && "assumption over unknown variable");
        if (value(A) == LBool::True) {
          TrailLim.push_back(static_cast<int>(Trail.size()));
          continue;
        }
        if (value(A) == LBool::False) {
          // The instance plus the earlier assumptions refute this one.
          analyzeFinal(A);
          backtrack(0);
          return false;
        }
        Next = A;
        break;
      }

      if (Next == LitUndef)
        Next = pickBranchLit();
      if (Next == LitUndef) {
        // All variables assigned: satisfiable.
        Model = Assigns;
        backtrack(0);
        return true;
      }
      ++Stats.Decisions;
      TrailLim.push_back(static_cast<int>(Trail.size()));
      enqueue(Next, nullptr);
    }
  }
}

//===----------------------------------------------------------------------===
// Activity heap
//===----------------------------------------------------------------------===

void SatSolver::heapInsert(Var V) {
  assert(!heapContains(V) && "variable already in heap");
  HeapIndex[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  siftUp(HeapIndex[V]);
}

void SatSolver::heapDecrease(Var V) { siftUp(HeapIndex[V]); }

Var SatSolver::heapPop() {
  assert(!Heap.empty() && "pop from empty heap");
  Var Top = Heap[0];
  HeapIndex[Top] = -1;
  Heap[0] = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    HeapIndex[Heap[0]] = 0;
    siftDown(0);
  }
  return Top;
}

void SatSolver::siftUp(int I) {
  Var V = Heap[I];
  while (I > 0) {
    int Parent = (I - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[I] = Heap[Parent];
    HeapIndex[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}

void SatSolver::siftDown(int I) {
  Var V = Heap[I];
  int N = static_cast<int>(Heap.size());
  for (;;) {
    int Child = 2 * I + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[I] = Heap[Child];
    HeapIndex[Heap[I]] = I;
    I = Child;
  }
  Heap[I] = V;
  HeapIndex[V] = I;
}
