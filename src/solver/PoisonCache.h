//===- PoisonCache.h - Remembered solver blow-ups ---------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The budget-fence companion of the refutation-reuse tier: a sharded
/// concurrent set of query keys whose solve blew a per-query budget
/// (conflicts, wall clock, or clause-database growth). A poisoned key is
/// refused on re-entry — the session returns SolverResult::Unknown
/// immediately instead of re-paying (or re-hanging on) the blow-up, the
/// klee-mc PoisonCache idiom. Unknown is already sound end-to-end: the
/// engine treats it as "may be true" and never prunes on it, so poisoning
/// costs completeness of *proofs* on exactly the queries that could not
/// be proven within budget anyway.
///
/// Keys are the SessionVerdictCache::makeKey normalization of the sliced
/// constraint set plus assumptions — identical to verdict-cache keys, so
/// the two lookups share one key computation, and a key poisoned by one
/// worker fences every worker's re-entry. Poisoning is deliberately NOT
/// consulted before the verdict, model, and core caches: those probes are
/// cheap and exact, and may still answer a query whose full solve blew up.
///
/// Capacity is a generation-LRU over sharded maps, like every cache in
/// this tier.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_POISONCACHE_H
#define SYMMERGE_SOLVER_POISONCACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace symmerge {

struct PoisonCacheOptions {
  /// Total entry bound across all shards; 0 = unbounded.
  size_t MaxEntries = 1u << 16;
  /// Concurrency shards (rounded up to a power of two).
  unsigned Shards = 16;
};

/// Shared concurrent set of poisoned query keys. Create with
/// createPoisonCache() and attach via createCoreSolver(); one cache is
/// shared by every native session of every worker stack.
class PoisonCache {
public:
  explicit PoisonCache(const PoisonCacheOptions &Opts);

  /// True when \p Key was poisoned by an earlier blow-up; refreshes the
  /// entry's recency and counts PoisonedQueries (the re-entry refusal)
  /// in the thread-local solver statistics.
  bool contains(const std::vector<uint64_t> &Key, uint64_t Hash);

  /// Poisons \p Key. Counts PoisonedInserts when the key is new.
  void insert(std::vector<uint64_t> Key, uint64_t Hash);

  /// Current entry count (for tests and statistics).
  size_t size() const;
  /// Entries dropped by the generation-LRU capacity bound.
  uint64_t evictions() const;

private:
  struct Entry {
    std::vector<uint64_t> Key;
    uint64_t Generation = 0; ///< Shard generation at last access.
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_multimap<uint64_t, Entry> Map;
    uint64_t Generation = 0;

    Shard() = default;
    Shard(Shard &&) noexcept {} // Only moved while empty, at construction.
  };

  Shard &shardFor(uint64_t Hash) {
    // The low bits index the buckets inside the shard; take high bits.
    return Shards[(Hash >> 48) & (Shards.size() - 1)];
  }

  /// Drops the least-recently-stamped half of \p S (caller holds S.M).
  static uint64_t evictOldHalf(Shard &S);

  std::vector<Shard> Shards;
  size_t MaxPerShard = 0;
  std::atomic<uint64_t> Evictions{0};
};

std::shared_ptr<PoisonCache>
createPoisonCache(const PoisonCacheOptions &Opts = {});

} // namespace symmerge

#endif // SYMMERGE_SOLVER_POISONCACHE_H
