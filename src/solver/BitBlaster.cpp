//===- BitBlaster.cpp - Expression to CNF translation ----------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/BitBlaster.h"

#include <cassert>

using namespace symmerge;
using namespace symmerge::sat;

BitBlaster::BitBlaster(SatSolver &S) : S(S) {
  Var V = S.newVar();
  TrueLit = mkLit(V);
  S.addClause(TrueLit);
}

Lit BitBlaster::litConst(bool B) const { return B ? TrueLit : ~TrueLit; }

bool BitBlaster::isConstLit(Lit L, bool &Value) const {
  if (L == TrueLit) {
    Value = true;
    return true;
  }
  if (L == ~TrueLit) {
    Value = false;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===
// Gates
//===----------------------------------------------------------------------===

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  bool CA, CB;
  if (isConstLit(A, CA))
    return CA ? B : litConst(false);
  if (isConstLit(B, CB))
    return CB ? A : litConst(false);
  if (A == B)
    return A;
  if (A == ~B)
    return litConst(false);
  Lit O = mkLit(S.newVar());
  S.addClause(~A, ~B, O);
  S.addClause(A, ~O);
  S.addClause(B, ~O);
  return O;
}

Lit BitBlaster::mkOr(Lit A, Lit B) { return ~mkAnd(~A, ~B); }

Lit BitBlaster::mkXor(Lit A, Lit B) {
  bool CA, CB;
  if (isConstLit(A, CA))
    return CA ? ~B : B;
  if (isConstLit(B, CB))
    return CB ? ~A : A;
  if (A == B)
    return litConst(false);
  if (A == ~B)
    return litConst(true);
  Lit O = mkLit(S.newVar());
  S.addClause(~A, ~B, ~O);
  S.addClause(A, B, ~O);
  S.addClause(~A, B, O);
  S.addClause(A, ~B, O);
  return O;
}

Lit BitBlaster::mkIte(Lit C, Lit T, Lit F) {
  bool CC, CT, CF;
  if (isConstLit(C, CC))
    return CC ? T : F;
  if (T == F)
    return T;
  if (isConstLit(T, CT))
    return CT ? mkOr(C, F) : mkAnd(~C, F);
  if (isConstLit(F, CF))
    return CF ? mkOr(~C, T) : mkAnd(C, T);
  if (T == ~F)
    return mkXor(C, F); // C ? ~F : F.
  Lit O = mkLit(S.newVar());
  S.addClause(~C, ~T, O);
  S.addClause(~C, T, ~O);
  S.addClause(C, ~F, O);
  S.addClause(C, F, ~O);
  // Redundant clauses that strengthen propagation.
  S.addClause(~T, ~F, O);
  S.addClause(T, F, ~O);
  return O;
}

Lit BitBlaster::mkAndReduce(const Bits &Bs) {
  Lit Acc = litConst(true);
  for (Lit B : Bs)
    Acc = mkAnd(Acc, B);
  return Acc;
}

//===----------------------------------------------------------------------===
// Word-level circuits
//===----------------------------------------------------------------------===

BitBlaster::Bits BitBlaster::mkAdder(const Bits &A, const Bits &B,
                                     Lit CarryIn) {
  assert(A.size() == B.size() && "adder width mismatch");
  Bits Sum(A.size(), LitUndef);
  Lit Carry = CarryIn;
  for (size_t I = 0; I < A.size(); ++I) {
    Lit AxB = mkXor(A[I], B[I]);
    Sum[I] = mkXor(AxB, Carry);
    Carry = mkOr(mkAnd(A[I], B[I]), mkAnd(Carry, AxB));
  }
  return Sum;
}

BitBlaster::Bits BitBlaster::mkNegate(const Bits &A) {
  Bits NotA(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    NotA[I] = ~A[I];
  Bits Zero(A.size(), litConst(false));
  return mkAdder(NotA, Zero, litConst(true));
}

Lit BitBlaster::mkUlt(const Bits &A, const Bits &B) {
  assert(A.size() == B.size() && "comparison width mismatch");
  // From LSB to MSB: at each bit, if the bits differ the verdict is B's
  // bit; otherwise the verdict carries over from the lower bits.
  Lit Less = litConst(false);
  for (size_t I = 0; I < A.size(); ++I) {
    Lit Diff = mkXor(A[I], B[I]);
    Less = mkIte(Diff, B[I], Less);
  }
  return Less;
}

Lit BitBlaster::mkSlt(const Bits &A, const Bits &B) {
  // Signed comparison = unsigned comparison with sign bits flipped.
  Bits A2 = A, B2 = B;
  A2.back() = ~A2.back();
  B2.back() = ~B2.back();
  return mkUlt(A2, B2);
}

Lit BitBlaster::mkEqWord(const Bits &A, const Bits &B) {
  assert(A.size() == B.size() && "equality width mismatch");
  Lit Acc = litConst(true);
  for (size_t I = 0; I < A.size(); ++I)
    Acc = mkAnd(Acc, ~mkXor(A[I], B[I]));
  return Acc;
}

BitBlaster::Bits BitBlaster::mkMux(Lit C, const Bits &T, const Bits &F) {
  assert(T.size() == F.size() && "mux width mismatch");
  Bits Out(T.size());
  for (size_t I = 0; I < T.size(); ++I)
    Out[I] = mkIte(C, T[I], F[I]);
  return Out;
}

BitBlaster::Bits BitBlaster::mkMul(const Bits &A, const Bits &B) {
  size_t W = A.size();
  Bits Acc(W, litConst(false));
  for (size_t I = 0; I < W; ++I) {
    // Partial product: (A << I) masked by B[I].
    Bits Partial(W, litConst(false));
    bool BConst;
    bool BIsConst = isConstLit(B[I], BConst);
    if (BIsConst && !BConst)
      continue;
    for (size_t J = I; J < W; ++J)
      Partial[J] = BIsConst ? A[J - I] : mkAnd(A[J - I], B[I]);
    Acc = mkAdder(Acc, Partial, litConst(false));
  }
  return Acc;
}

void BitBlaster::mkUDivURem(const Bits &A, const Bits &B, Bits &Quot,
                            Bits &Rem) {
  size_t W = A.size();
  // Restoring division over a (W+1)-bit remainder register. With B == 0
  // every trial subtraction succeeds, producing quotient all-ones and
  // remainder A — exactly the SMT-LIB bvudiv/bvurem convention that
  // ExprContext's folder implements.
  Bits R(W + 1, litConst(false));
  Bits BExt = B;
  BExt.push_back(litConst(false));
  Quot.assign(W, litConst(false));
  for (size_t Step = W; Step-- > 0;) {
    // R = (R << 1) | A[Step], dropping R's top bit (always 0 on entry).
    Bits RShift(W + 1, LitUndef);
    RShift[0] = A[Step];
    for (size_t I = 1; I <= W; ++I)
      RShift[I] = R[I - 1];
    Lit Geq = ~mkUlt(RShift, BExt);
    // RSub = RShift - BExt.
    Bits NotB(W + 1);
    for (size_t I = 0; I <= W; ++I)
      NotB[I] = ~BExt[I];
    Bits RSub = mkAdder(RShift, NotB, litConst(true));
    R = mkMux(Geq, RSub, RShift);
    Quot[Step] = Geq;
  }
  Rem.assign(R.begin(), R.begin() + W);
}

BitBlaster::Bits BitBlaster::mkShift(const Bits &A, const Bits &Amount,
                                     ExprKind Kind) {
  size_t W = A.size();
  Lit Fill = Kind == ExprKind::AShr ? A.back() : litConst(false);
  Bits Cur = A;
  // Barrel shifter over the amount bits that denote in-range shifts.
  for (size_t K = 0; K < Amount.size() && (1ULL << K) < W; ++K) {
    size_t Step = 1ULL << K;
    Bits Next(W, LitUndef);
    for (size_t I = 0; I < W; ++I) {
      Lit Shifted;
      if (Kind == ExprKind::Shl)
        Shifted = I >= Step ? Cur[I - Step] : Fill;
      else
        Shifted = I + Step < W ? Cur[I + Step] : Fill;
      Next[I] = mkIte(Amount[K], Shifted, Cur[I]);
    }
    Cur = Next;
  }
  // Any amount bit at weight >= W forces the out-of-range result.
  Lit Overflow = litConst(false);
  for (size_t K = 0; K < Amount.size(); ++K) {
    if ((1ULL << K) >= W)
      Overflow = mkOr(Overflow, Amount[K]);
  }
  for (size_t I = 0; I < W; ++I)
    Cur[I] = mkIte(Overflow, Fill, Cur[I]);
  return Cur;
}

//===----------------------------------------------------------------------===
// Expression lowering
//===----------------------------------------------------------------------===

BitBlaster::Bits BitBlaster::lower(ExprRef E) {
  auto It = Lowered.find(E);
  if (It != Lowered.end()) {
    ++TheStats.CacheHits;
    return It->second;
  }
  ++TheStats.NodesLowered;

  Bits Out;
  unsigned W = E->width();
  switch (E->kind()) {
  case ExprKind::Constant: {
    uint64_t V = E->constantValue();
    Out.resize(W);
    for (unsigned I = 0; I < W; ++I)
      Out[I] = litConst((V >> I) & 1);
    break;
  }
  case ExprKind::Var: {
    Out.resize(W);
    for (unsigned I = 0; I < W; ++I)
      Out[I] = mkLit(S.newVar());
    VarMap.emplace(E, Out);
    break;
  }
  case ExprKind::Not: {
    const Bits &A = lower(E->operand(0));
    Out.resize(W);
    for (unsigned I = 0; I < W; ++I)
      Out[I] = ~A[I];
    break;
  }
  case ExprKind::Neg:
    Out = mkNegate(lower(E->operand(0)));
    break;
  case ExprKind::ZExt: {
    Out = lower(E->operand(0));
    Out.resize(W, litConst(false));
    break;
  }
  case ExprKind::SExt: {
    Out = lower(E->operand(0));
    Out.resize(W, Out.back());
    break;
  }
  case ExprKind::Trunc: {
    const Bits &A = lower(E->operand(0));
    Out.assign(A.begin(), A.begin() + W);
    break;
  }
  case ExprKind::Add:
    Out = mkAdder(lower(E->operand(0)), lower(E->operand(1)),
                  litConst(false));
    break;
  case ExprKind::Sub: {
    const Bits &A = lower(E->operand(0));
    const Bits &B = lower(E->operand(1));
    Bits NotB(B.size());
    for (size_t I = 0; I < B.size(); ++I)
      NotB[I] = ~B[I];
    Out = mkAdder(A, NotB, litConst(true));
    break;
  }
  case ExprKind::Mul:
    Out = mkMul(lower(E->operand(0)), lower(E->operand(1)));
    break;
  case ExprKind::UDiv:
  case ExprKind::URem: {
    Bits Quot, Rem;
    mkUDivURem(lower(E->operand(0)), lower(E->operand(1)), Quot, Rem);
    Out = E->kind() == ExprKind::UDiv ? Quot : Rem;
    break;
  }
  case ExprKind::SDiv:
  case ExprKind::SRem: {
    // Signed division on magnitudes with sign fixups. The B == 0 and
    // INT_MIN corner cases fall out of the unsigned circuit exactly as
    // in the SMT-LIB definition (see ExprContext::evalBinOp).
    const Bits &A = lower(E->operand(0));
    const Bits &B = lower(E->operand(1));
    Lit SignA = A.back(), SignB = B.back();
    Bits AbsA = mkMux(SignA, mkNegate(A), A);
    Bits AbsB = mkMux(SignB, mkNegate(B), B);
    Bits Quot, Rem;
    mkUDivURem(AbsA, AbsB, Quot, Rem);
    if (E->kind() == ExprKind::SDiv) {
      Lit Negate = mkXor(SignA, SignB);
      Out = mkMux(Negate, mkNegate(Quot), Quot);
    } else {
      Out = mkMux(SignA, mkNegate(Rem), Rem);
    }
    break;
  }
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Xor: {
    const Bits &A = lower(E->operand(0));
    const Bits &B = lower(E->operand(1));
    Out.resize(W);
    for (unsigned I = 0; I < W; ++I) {
      if (E->kind() == ExprKind::And)
        Out[I] = mkAnd(A[I], B[I]);
      else if (E->kind() == ExprKind::Or)
        Out[I] = mkOr(A[I], B[I]);
      else
        Out[I] = mkXor(A[I], B[I]);
    }
    break;
  }
  case ExprKind::Shl:
  case ExprKind::LShr:
  case ExprKind::AShr:
    Out = mkShift(lower(E->operand(0)), lower(E->operand(1)), E->kind());
    break;
  case ExprKind::Eq:
    Out = {mkEqWord(lower(E->operand(0)), lower(E->operand(1)))};
    break;
  case ExprKind::Ne:
    Out = {~mkEqWord(lower(E->operand(0)), lower(E->operand(1)))};
    break;
  case ExprKind::Ult:
    Out = {mkUlt(lower(E->operand(0)), lower(E->operand(1)))};
    break;
  case ExprKind::Ule:
    Out = {~mkUlt(lower(E->operand(1)), lower(E->operand(0)))};
    break;
  case ExprKind::Slt:
    Out = {mkSlt(lower(E->operand(0)), lower(E->operand(1)))};
    break;
  case ExprKind::Sle:
    Out = {~mkSlt(lower(E->operand(1)), lower(E->operand(0)))};
    break;
  case ExprKind::Ite: {
    Lit C = lower(E->operand(0))[0];
    Out = mkMux(C, lower(E->operand(1)), lower(E->operand(2)));
    break;
  }
  }
  assert(Out.size() == W && "lowered width mismatch");
  Lowered.emplace(E, Out);
  return Out;
}

void BitBlaster::assertTrue(ExprRef E) {
  assert(E->width() == 1 && "only width-1 expressions can be asserted");
  Lit L = lower(E)[0];
  S.addClause(L);
}

Lit BitBlaster::literalFor(ExprRef E) {
  assert(E->width() == 1 && "only width-1 expressions denote literals");
  return lower(E)[0];
}

size_t BitBlaster::footprintBytes() const {
  auto MapBytes = [](const std::unordered_map<ExprRef, Bits> &M) {
    size_t Bytes = M.bucket_count() * sizeof(void *);
    for (const auto &[E, Bs] : M)
      Bytes += sizeof(std::pair<ExprRef, Bits>) +
               Bs.capacity() * sizeof(Lit);
    return Bytes;
  };
  return MapBytes(Lowered) + MapBytes(VarMap);
}

const std::vector<Lit> *BitBlaster::varBits(ExprRef V) const {
  auto It = VarMap.find(V);
  return It == VarMap.end() ? nullptr : &It->second;
}

uint64_t BitBlaster::modelValue(ExprRef V) const {
  const Bits *Bs = varBits(V);
  if (!Bs)
    return 0;
  uint64_t Value = 0;
  for (size_t I = 0; I < Bs->size(); ++I) {
    Lit L = (*Bs)[I];
    LBool B = S.modelValue(var(L));
    bool BitSet = B == (sign(L) ? LBool::False : LBool::True);
    if (BitSet)
      Value |= 1ULL << I;
  }
  return Value;
}
