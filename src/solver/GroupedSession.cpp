//===- GroupedSession.cpp - Per-group native solver sub-sessions -------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/GroupedSession.h"

#include "expr/ExprUtil.h"
#include "solver/BitBlaster.h"
#include "solver/CoreCache.h"
#include "solver/ModelCache.h"
#include "solver/PoisonCache.h"
#include "solver/Sat.h"
#include "solver/SessionVerdictCache.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace symmerge;

//===----------------------------------------------------------------------===
// ScopedUnionFind
//===----------------------------------------------------------------------===

int ScopedUnionFind::add(uint64_t Key) {
  auto It = Index.find(Key);
  if (It != Index.end())
    return It->second;
  int N = static_cast<int>(Parent.size());
  Parent.push_back(N);
  GroupSize.push_back(1);
  Index.emplace(Key, N);
  Log.push_back({-1, Key});
  return N;
}

bool ScopedUnionFind::unite(int A, int B) {
  int RA = root(A), RB = root(B);
  if (RA == RB)
    return false;
  if (GroupSize[RA] < GroupSize[RB])
    std::swap(RA, RB);
  Parent[RB] = RA;
  GroupSize[RA] += GroupSize[RB];
  Log.push_back({RB, 0});
  return true;
}

void ScopedUnionFind::pop() {
  assert(!ScopeMarks.empty() && "pop without matching push");
  size_t Mark = ScopeMarks.back();
  ScopeMarks.pop_back();
  while (Log.size() > Mark) {
    UndoEntry U = Log.back();
    Log.pop_back();
    if (U.Child >= 0) {
      // Undoing a union: the child root was attached directly under the
      // winning root and, with no path compression, still is. Its own
      // subtree never changed while it was a non-root (unions attach to
      // roots only), so subtracting its size restores the winner exactly.
      int R = Parent[U.Child];
      Parent[U.Child] = U.Child;
      GroupSize[R] -= GroupSize[U.Child];
    } else {
      // Node adds are undone in reverse creation order, so the node being
      // removed is always the current tail.
      Index.erase(U.Key);
      Parent.pop_back();
      GroupSize.pop_back();
    }
  }
}

size_t ScopedUnionFind::groupCount() const {
  size_t N = 0;
  for (size_t I = 0; I < Parent.size(); ++I)
    N += Parent[I] == static_cast<int>(I);
  return N;
}

//===----------------------------------------------------------------------===
// GroupedCoreSession
//===----------------------------------------------------------------------===

namespace {

/// Natively incremental session with per-group sub-instances. The public
/// push/pop/assert_/check contract is identical to the monolithic
/// IncrementalCoreSession; the difference is entirely in how the SAT work
/// is organized: constraints are partitioned by variable connectivity
/// (tracked by a rollback union-find so pops split groups again), each
/// group lazily owns a private SatSolver + BitBlaster, and a check
/// encodes and solves only what its assumptions can reach.
class GroupedCoreSession : public SolverSession {
public:
  /// Dead-guard garbage in a sub-instance is purged every this many
  /// retired guards (matches the monolithic session's cadence).
  static constexpr size_t PurgeInterval = 16;

  GroupedCoreSession(ExprContext &Ctx, GroupedSessionConfig Cfg)
      : SolverSession(Ctx), Cfg(std::move(Cfg)) {
    Frames.push_back(Frame{0, {}, false});
  }

  ~GroupedCoreSession() override {
    session_common::flushPendingEncode(PendingEncodeSeconds);
  }

  void push() override {
    Frames.push_back(Frame{++NextScope, {}, false});
    UF.push();
    // No SAT work: guard literals are allocated lazily, per sub-instance,
    // when the scope first materializes a constraint into one.
  }

  void pop() override {
    assert(Frames.size() > 1 && "pop without matching push");
    Frame &F = Frames.back();
    for (AssertRec &Rec : F.Asserted)
      if (Rec.Sub >= 0 && Subs[Rec.Sub])
        --Subs[Rec.Sub]->LiveRecs;
    // Retire the scope only in the sub-instances it touched: a group the
    // scope never asserted into has no guard for it and accumulates no
    // dead-guard garbage from this pop.
    for (auto &SP : Subs) {
      if (!SP)
        continue;
      auto It = SP->Guards.find(F.Scope);
      if (It == SP->Guards.end())
        continue;
      SP->S.addClause(~It->second);
      SP->Guards.erase(It);
      if (++SP->Retired % PurgeInterval == 0 && SP->S.okay())
        SP->S.purgeSatisfiedClauses();
      // Popping only relaxes the instance, so a KnownSat verdict
      // deliberately survives the retirement.
    }
    Frames.pop_back();
    ++RetiredScopes;
    UF.pop();
    // Rolling back the union-find can split groups, changing roots.
    RoutingValid = false;
  }

  void assert_(ExprRef E) override {
    assert(E->width() == 1 && "only width-1 expressions can be asserted");
    Frame &F = Frames.back();
    F.Asserted.push_back(AssertRec{E, SubPending});
    AssertRec &Rec = F.Asserted.back();
    if (E->isTrue()) {
      Rec.Sub = SubNone;
      return;
    }
    if (E->isFalse()) {
      Rec.Sub = SubNone;
      F.HasFalse = true;
      if (Frames.size() == 1)
        RootUnsat = true;
      return;
    }
    // Union the constraint's variables into one group, recorded in the
    // current scope so the matching pop splits the groups again. Unions
    // can change group roots, so the routing snapshot goes stale.
    RoutingValid = false;
    const std::vector<ExprRef> &Vars = varsOf(E);
    int First = -1;
    for (ExprRef V : Vars) {
      int N = UF.add(V->id());
      if (First < 0)
        First = N;
      else
        UF.unite(First, N);
    }
    // With any cache attached, encoding is deferred until a check misses
    // them all; without one every check solves, so encode eagerly (the
    // encode time then lands outside the check, where the caller's
    // per-response accounting expects it). Only the record just appended
    // can be pending here — eager mode leaves nothing behind — so this
    // is O(1) records, not a full-frame rescan.
    if (!Cfg.Cache && !Cfg.Models && !Cfg.Cores && !Cfg.Poison &&
        !RootUnsat) {
      Timer T;
      materializeRec(F, Rec);
      PendingEncodeSeconds += T.seconds();
      syncEncodeCounters();
    }
  }

  SessionHealth health() const override {
    SessionHealth H;
    for (const Frame &F : Frames)
      H.AssertedConstraints += F.Asserted.size();
    H.LiveScopes = Frames.size() - 1;
    H.RetiredScopes = RetiredScopes;
    H.PurgedClauses = RetiredPurged;
    for (const auto &SP : Subs) {
      if (!SP)
        continue;
      ++H.Groups;
      H.ClauseCount += SP->S.numClauses();
      H.LearntCount += SP->S.numLearnts();
      // The eviction watermark sees the sum of the sub-instance
      // footprints, encoding caches included: many small instances carry
      // per-instance overhead a single monolithic count would hide.
      H.MemoryBytes += SP->S.memoryFootprintBytes() + SP->BB.footprintBytes();
      H.PurgedClauses += SP->S.stats().PurgedSatisfied;
    }
    return H;
  }

  SolverResponse checkSat(bool WantModel) override {
    return checkSatAssuming(std::vector<ExprRef>{}, WantModel);
  }

  SolverResponse checkSatAssuming(const std::vector<ExprRef> &Assumptions,
                                  bool WantModel) override {
    SolverQueryStats &Stats = solverStats();
    ++Stats.CoreQueries;
    if (Cfg.Tracked) {
      ++Stats.Queries;
      ++Stats.SessionQueries;
      if (!Assumptions.empty())
        ++Stats.AssumptionQueries;
    }

    SolverResponse R;
    const double AssertEncode = PendingEncodeSeconds;
    R.EncodeSeconds = AssertEncode;
    PendingEncodeSeconds = 0;
    Timer Total;

    // Triage the assumptions without encoding anything.
    std::vector<ExprRef> Meaningful;
    ExprRef TriviallyFalse =
        session_common::triageAssumptions(Assumptions, Meaningful);

    if (RootUnsat || TriviallyFalse || anyFrameFalse() || !subsOkay()) {
      R.Result = SolverResult::Unsat;
      if (TriviallyFalse)
        R.FailedAssumptions = {TriviallyFalse};
      ++Stats.UnsatResults;
      finishTiming(Stats, R, Total, AssertEncode);
      return R;
    }

    // Group reachability from the assumptions: computed at most once per
    // check, shared by the sliced verdict-cache key and the sliced solve.
    std::unordered_set<int> SeedRoots;
    bool SeedsResolved = false;
    auto ComputeSeeds = [&] {
      if (SeedsResolved)
        return;
      SeedsResolved = true;
      for (ExprRef A : Meaningful)
        for (ExprRef V : varsOf(A))
          if (int N = UF.lookup(V->id()); N >= 0)
            SeedRoots.insert(UF.root(N));
    };
    auto Reachable = [&](const AssertRec &Rec) {
      int Root = rootOfExpr(Rec.E);
      return Root >= 0 && SeedRoots.count(Root) != 0;
    };

    // Session-level verdict cache, keyed exactly like the monolithic
    // session (normalized union of the asserted constraints and the
    // assumptions; sliced to the reachable groups under the
    // feasible-prefix promise), so grouped and monolithic sessions agree
    // on keys and a shared cache stays coherent. The model cache probes
    // the SAME constraint list after a verdict miss: a cached assignment
    // revalidated by concrete evaluation answers SAT before anything is
    // materialized into a sub-instance (sound under the promise by the
    // disjoint-variables argument; unconditionally sound on the full
    // set).
    std::vector<uint64_t> Key;
    uint64_t KeyHash = 0;
    const bool UseCache = Cfg.Cache != nullptr && !WantModel;
    // The core cache and the poison cache key on the same normalized
    // constraint multiset as the verdict cache, so one makeKey serves
    // all three probes and a shared cache stays coherent across grouped
    // and monolithic sessions.
    const bool HaveKey = UseCache || Cfg.Cores != nullptr ||
                         Cfg.Poison != nullptr;
    if (HaveKey || Cfg.Models) {
      const bool Slice =
          Cfg.FeasiblePrefix && !Meaningful.empty() && !WantModel;
      if (Slice)
        ComputeSeeds();
      std::vector<ExprRef> Constraints;
      for (const Frame &F : Frames)
        for (const AssertRec &Rec : F.Asserted) {
          if (Rec.E->isTrue())
            continue;
          if (Slice && !Reachable(Rec))
            continue;
          Constraints.push_back(Rec.E);
        }
      Constraints.insert(Constraints.end(), Meaningful.begin(),
                         Meaningful.end());
      // The key's footprint signature is computed ONCE here and threaded
      // through every probe of the miss pipeline (core cache now;
      // signatures are cheap but the pipeline runs per check).
      uint64_t KeySig = 0;
      if (HaveKey) {
        SessionVerdictCache::makeKey(Constraints, Key, KeyHash);
        KeySig = footprintSignature(Key);
      }
      if (UseCache) {
        SolverResult Hit;
        if (Cfg.Cache->lookup(Key, KeyHash, Hit)) {
          ++Stats.VerdictCacheHits;
          R.Result = Hit;
          if (R.isUnsat()) {
            ++Stats.UnsatResults;
            R.FailedAssumptions = Meaningful;
          } else {
            ++Stats.SatResults;
          }
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
        ++Stats.VerdictCacheMisses;
      }
      if (Cfg.Models) {
        std::vector<ExprRef> Vars = session_common::distinctVarsOf(
            Constraints, [this](ExprRef E) -> const std::vector<ExprRef> & {
              return varsOf(E);
            });
        uint64_t VarsSig = 0;
        for (ExprRef V : Vars)
          VarsSig |= footprintBit(V->id());
        VarAssignment Hit;
        if (Cfg.Models->probe(Constraints, Vars, VarsSig, Hit)) {
          ++Stats.EvalSatShortcuts;
          ++Stats.SatResults;
          R.Result = SolverResult::Sat;
          if (WantModel)
            completeModel(Hit, Assumptions, R);
          if (UseCache)
            Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
      }
      // Refutation reuse: a cached UNSAT core that is a subset of the
      // current constraint set refutes it with zero SAT calls — the
      // dual of the model-cache shortcut above. Sound for model requests
      // too: an UNSAT set has no model to return.
      if (Cfg.Cores && Cfg.Cores->probe(Key, KeySig)) {
        R.Result = SolverResult::Unsat;
        ++Stats.UnsatResults;
        // Cores name constraints, not the caller's assumption subset;
        // over-approximate like verdict-cache refutations do.
        R.FailedAssumptions = Meaningful;
        if (UseCache)
          Cfg.Cache->insert(std::vector<uint64_t>(Key), KeyHash, R.Result);
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
      // Poison fence, deliberately AFTER every exact probe: a poisoned
      // key that some cache has since learned an exact answer for should
      // get that answer, not a stale Unknown.
      if (Cfg.Poison && Cfg.Poison->contains(Key, KeyHash)) {
        R.Result = SolverResult::Unknown;
        ++Stats.UnknownsObserved;
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
    }

    // The headline behavior: under the feasible-prefix promise a
    // verdict-cache miss materializes and solves ONLY the groups the
    // assumptions reach — everything else is satisfiable by promise.
    // Model requests and promise-free sessions work the full set, but
    // still per group, and reuse each group's KnownSat verdict (pops
    // only relax a group, so satisfiability survives them).
    const bool SliceOnly =
        Cfg.FeasiblePrefix && !Meaningful.empty() && !WantModel;
    {
      Timer TE;
      if (SliceOnly) {
        ComputeSeeds();
        for (Frame &F : Frames)
          for (AssertRec &Rec : F.Asserted)
            if (Rec.Sub == SubPending && Reachable(Rec))
              materializeRec(F, Rec);
      } else {
        materializeAllPending();
      }
      R.EncodeSeconds += TE.seconds();
      syncEncodeCounters();
    }
    if (RootUnsat || !subsOkay()) {
      R.Result = SolverResult::Unsat;
      ++Stats.UnsatResults;
      finishTiming(Stats, R, Total, AssertEncode);
      return R;
    }

    // Route the assumptions: one target sub-instance covering every
    // group they reach (merging sub-instances only when the assumptions
    // actually bridge groups), with encodings reused check to check.
    int Target = -1;
    if (!Meaningful.empty()) {
      ComputeSeeds();
      std::vector<int> Cand;
      auto AddCand = [&](int Sub) {
        if (Sub >= 0 && Subs[Sub] &&
            std::find(Cand.begin(), Cand.end(), Sub) == Cand.end())
          Cand.push_back(Sub);
      };
      // O(groups reached) routing via the snapshot instead of rescanning
      // every frame's records: the reachable groups' roots are exactly
      // SeedRoots, and the snapshot maps each to its live sub-instances.
      // Candidate order differs from the old frame-order scan, but
      // mergeSubs picks its survivor by (LiveRecs, id) — order-blind.
      ensureRouting();
      for (int Root : SeedRoots)
        for (int Sub : subsOfRoot(Root))
          AddCand(Sub);
      // Reuse an assumption variable's previous encoding only when its
      // home instance carries no live constraints (pulling in a live
      // foreign group would coarsen the slice for free encoding hits).
      for (ExprRef A : Meaningful)
        for (ExprRef V : varsOf(A))
          if (auto It = VarHome.find(V->id());
              It != VarHome.end() && Subs[It->second] &&
              Subs[It->second]->LiveRecs == 0)
            AddCand(It->second);
      if (Cand.empty()) {
        Target = newSub();
      } else {
        Timer TM;
        Target = mergeSubs(Cand);
        R.EncodeSeconds += TM.seconds();
      }
      for (ExprRef A : Meaningful)
        for (ExprRef V : varsOf(A))
          VarHome[V->id()] = Target;
    }

    // Sub-instances freshly solved by THIS check — each holds a model in
    // its SAT core that the model cache can republish.
    std::vector<int> SolvedSubs;

    // Memory watermark: a check whose solves balloon the clause
    // databases past the per-query delta is poisoned for re-entry even
    // when it finishes with an exact verdict (which is still returned
    // and cached). Growth accumulates across the target solve and the
    // per-group verification solves — re-entry would redo them all.
    const bool TrackMem =
        Cfg.Poison && Cfg.PoisonMemoryDeltaBytes > 0 && !Key.empty();
    uint64_t MemGrowth = 0;
    // Blown budget (conflict or wall): remember the key so the next
    // arrival gets Unknown up front instead of burning the budget again.
    auto PoisonKey = [&] {
      if (Cfg.Poison && !Key.empty())
        Cfg.Poison->insert(std::vector<uint64_t>(Key), KeyHash);
    };

    if (Target >= 0) {
      SubSession &T = *Subs[Target];
      std::vector<sat::Lit> Lits = liveGuardsOf(T);
      std::vector<std::pair<sat::Lit, ExprRef>> LitExprs;
      for (ExprRef A : Meaningful) {
        Timer TA;
        sat::Lit L = T.BB.literalFor(A);
        R.EncodeSeconds += TA.seconds();
        Lits.push_back(L);
        LitExprs.push_back({L, A});
      }
      syncEncodeCounters();

      const size_t MemBefore = TrackMem ? T.S.memoryFootprintBytes() : 0;
      Timer TS;
      bool IsSat = T.S.solveAssuming(
          Lits, BudgetOverride ? BudgetOverride : Cfg.ConflictBudget);
      R.SolveSeconds += TS.seconds();
      if (TrackMem) {
        size_t MemAfter = T.S.memoryFootprintBytes();
        if (MemAfter > MemBefore)
          MemGrowth += MemAfter - MemBefore;
      }
      if (!IsSat && T.S.budgetExceeded()) {
        R.Result = SolverResult::Unknown;
        ++Stats.UnknownsObserved;
        PoisonKey();
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
      if (!IsSat) {
        R.Result = SolverResult::Unsat;
        ++Stats.UnsatResults;
        // Map the failing literals back to the caller's assumptions;
        // scope-guard literals stay internal.
        for (sat::Lit L : T.S.failedAssumptions())
          for (const auto &[AL, AE] : LitExprs)
            if (AL == L) {
              R.FailedAssumptions.push_back(AE);
              break;
            }
        // Publish the refutation: the target's root-scope constraints
        // are asserted unconditionally, a guarded scope contributed only
        // if its guard literal is in the failed set (otherwise the core
        // can set the guard false and ignore the scope), and the failed
        // assumptions contributed by construction. That set is jointly
        // UNSAT, so any future query containing it is UNSAT by
        // subsumption.
        if (Cfg.Cores) {
          std::vector<ExprRef> Core;
          collectScopeCore(T, Target, Core);
          for (ExprRef A : R.FailedAssumptions)
            Core.push_back(A);
          if (!Core.empty())
            Cfg.Cores->publish(Core);
        }
        if (TrackMem && MemGrowth > Cfg.PoisonMemoryDeltaBytes)
          PoisonKey();
        if (UseCache)
          Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
      // Satisfiable under assumptions implies satisfiable without them.
      T.KnownSat = true;
      SolvedSubs.push_back(Target);
    }

    if (!SliceOnly) {
      // Every other group must hold too. Clean (KnownSat) groups are
      // skipped — their last model remains a model of the relaxed-only
      // instance — and groups whose live constraints all popped away are
      // vacuously satisfiable through their dead guards.
      for (size_t I = 0; I < Subs.size(); ++I) {
        auto &SP = Subs[I];
        if (!SP || static_cast<int>(I) == Target)
          continue;
        if (SP->LiveRecs == 0 || SP->KnownSat)
          continue;
        const size_t MemBefore = TrackMem ? SP->S.memoryFootprintBytes() : 0;
        Timer TS;
        bool IsSat = SP->S.solveAssuming(
            liveGuardsOf(*SP),
            BudgetOverride ? BudgetOverride : Cfg.ConflictBudget);
        R.SolveSeconds += TS.seconds();
        if (TrackMem) {
          size_t MemAfter = SP->S.memoryFootprintBytes();
          if (MemAfter > MemBefore)
            MemGrowth += MemAfter - MemBefore;
        }
        if (!IsSat && SP->S.budgetExceeded()) {
          R.Result = SolverResult::Unknown;
          ++Stats.UnknownsObserved;
          PoisonKey();
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
        if (!IsSat) {
          // A group unsatisfiable on its own refutes the check with no
          // help from the assumptions (same empty failed set a
          // root-level refutation reports).
          R.Result = SolverResult::Unsat;
          ++Stats.UnsatResults;
          // The refuting set is this group's own contribution: its
          // root-scope records plus the records of any scope whose guard
          // is in the failed set.
          if (Cfg.Cores) {
            std::vector<ExprRef> Core;
            collectScopeCore(*SP, static_cast<int>(I), Core);
            if (!Core.empty())
              Cfg.Cores->publish(Core);
          }
          if (TrackMem && MemGrowth > Cfg.PoisonMemoryDeltaBytes)
            PoisonKey();
          if (UseCache)
            Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
        SP->KnownSat = true;
        SolvedSubs.push_back(static_cast<int>(I));
      }
    }

    if (TrackMem && MemGrowth > Cfg.PoisonMemoryDeltaBytes)
      PoisonKey();
    R.Result = SolverResult::Sat;
    ++Stats.SatResults;
    if (SliceOnly && solvedProperSubset(Target))
      ++Stats.GroupSlicedSolves;
    if (WantModel)
      composeModel(Assumptions, R);
    if (Cfg.Models) {
      // Publish the witnesses. A composed full model subsumes the groups;
      // otherwise each freshly solved sub-instance contributes its
      // per-group assignment (the composition property: disjoint
      // footprints reuse independently).
      if (WantModel)
        Cfg.Models->insert(R.Model);
      else
        for (int Sub : SolvedSubs)
          publishGroupModel(Sub, Sub == Target ? &Meaningful : nullptr);
    }
    if (UseCache)
      Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
    finishTiming(Stats, R, Total, AssertEncode);
    return R;
  }

private:
  static constexpr int SubPending = -1; ///< Asserted, not yet encoded.
  static constexpr int SubNone = -2;    ///< Constant; never encoded.

  struct AssertRec {
    ExprRef E;
    int Sub = SubPending; ///< Sub-instance this constraint is encoded in.
  };

  struct Frame {
    uint64_t Scope; ///< 0 for the root scope.
    std::vector<AssertRec> Asserted;
    bool HasFalse = false;
  };

  /// One group's private instance: its own CDCL core, its own persistent
  /// Tseitin encoding, and its own guard literal per scope that asserted
  /// into it.
  struct SubSession {
    sat::SatSolver S;
    BitBlaster BB;
    std::unordered_map<uint64_t, sat::Lit> Guards; ///< Live scopes only.
    size_t Retired = 0;  ///< Guards permanently disabled by pops.
    size_t LiveRecs = 0; ///< Live constraints currently routed here.
    /// The live clause set is known satisfiable (established by a SAT
    /// solve; survives pops, which only relax; cleared by any new
    /// encoding). Lets checks skip re-verifying untouched groups.
    bool KnownSat = false;

    SubSession() : BB(S) {}
  };

  /// The variables of \p E, collected once per session and memoized.
  const std::vector<ExprRef> &varsOf(ExprRef E) {
    auto [It, Inserted] = VarsMemo.emplace(E, std::vector<ExprRef>());
    if (Inserted)
      It->second = collectVars(E);
    return It->second;
  }

  /// Group representative of \p E's variables (all one group by the
  /// assert-time union, whose scope is still live while E is). -1 for
  /// variable-free expressions.
  int rootOfExpr(ExprRef E) {
    const std::vector<ExprRef> &Vars = varsOf(E);
    if (Vars.empty())
      return -1;
    int N = UF.lookup(Vars[0]->id());
    assert(N >= 0 && "asserted constraint's variables must be grouped");
    return UF.root(N);
  }

  /// Appends \p Sub to \p Root's routing list if absent (lists are tiny:
  /// a group rarely spans more than a couple of sub-instances, and only
  /// until the next merge collapses them).
  void addRoute(int Root, int Sub) {
    std::vector<int> &V = RootSubs[Root];
    if (std::find(V.begin(), V.end(), Sub) == V.end())
      V.push_back(Sub);
  }

  /// Rebuilds the group-root → sub-instance index when stale. assert_
  /// and pop invalidate it (unions and rollbacks change roots);
  /// encodeInto and mergeSubs update it in place, so checks after the
  /// first rescan of a mutation epoch route in O(groups reached) instead
  /// of rescanning every frame per routed constraint.
  void ensureRouting() {
    if (RoutingValid)
      return;
    RootSubs.clear();
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        if (Rec.Sub >= 0 && Subs[Rec.Sub])
          addRoute(rootOfExpr(Rec.E), Rec.Sub);
    RoutingValid = true;
  }

  /// The sub-instances holding live constraints of group \p Root (O(1)
  /// via the routing snapshot). Null (merged-away) subs never appear:
  /// rebuilds skip them and merges replace them in place.
  std::vector<int> subsOfRoot(int Root) {
    ensureRouting();
    auto It = RootSubs.find(Root);
    return It == RootSubs.end() ? std::vector<int>() : It->second;
  }

  bool anyFrameFalse() const {
    for (const Frame &F : Frames)
      if (F.HasFalse)
        return true;
    return false;
  }

  bool subsOkay() const {
    // A sub-instance whose clause database is unsatisfiable independent
    // of assumptions had contradictory root-scope constraints: the
    // session is permanently unsatisfiable (guarded clauses alone can
    // never poison an instance — their guards are assumable).
    for (const auto &SP : Subs)
      if (SP && !SP->S.okay())
        return false;
    return true;
  }

  int newSub() {
    Subs.push_back(std::make_unique<SubSession>());
    if (Cfg.WallBudgetSeconds > 0)
      Subs.back()->S.setWallBudgetSeconds(Cfg.WallBudgetSeconds);
    ++solverStats().GroupSubSessions;
    return static_cast<int>(Subs.size() - 1);
  }

  /// Collects the constraints sub-instance \p Sub contributed to its
  /// just-failed UNSAT solve: root-scope records unconditionally (they
  /// are root units of the instance), a guarded scope's records only
  /// when the scope's guard literal is in the failed-assumption set —
  /// otherwise the refutation holds with the guard set false, i.e.
  /// without that scope. The result is jointly UNSAT on its own, which
  /// is exactly what CoreCache::publish needs.
  void collectScopeCore(const SubSession &S, int Sub,
                        std::vector<ExprRef> &Core) const {
    std::unordered_set<uint64_t> FailedScopes;
    for (const auto &[Scope, G] : S.Guards)
      for (sat::Lit L : S.S.failedAssumptions())
        if (L == G) {
          FailedScopes.insert(Scope);
          break;
        }
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        if (Rec.Sub == Sub && !Rec.E->isTrue() &&
            (F.Scope == 0 || FailedScopes.count(F.Scope) != 0))
          Core.push_back(Rec.E);
  }

  sat::Lit guardFor(SubSession &S, uint64_t Scope) {
    auto [It, Inserted] = S.Guards.emplace(Scope, sat::LitUndef);
    if (Inserted)
      It->second = sat::mkLit(S.S.newVar());
    return It->second;
  }

  /// Lowers \p E into sub-instance \p Sub, guarded by its scope. Records
  /// the home of every variable so later constraints on a group whose
  /// live members all popped away find (and extend) the old instance
  /// instead of abandoning it — that reuse is what keeps loop bodies
  /// that re-assert the same conditions from minting a fresh instance
  /// per iteration, and what lets the per-sub purge cadence ever fire.
  void encodeInto(int Sub, ExprRef E, uint64_t Scope) {
    SubSession &S = *Subs[Sub];
    sat::Lit L = S.BB.literalFor(E);
    if (Scope == 0)
      S.S.addClause(L);
    else
      S.S.addClause(~guardFor(S, Scope), L);
    S.KnownSat = false;
    for (ExprRef V : varsOf(E))
      VarHome[V->id()] = Sub;
    if (RoutingValid)
      addRoute(rootOfExpr(E), Sub);
  }

  /// Encodes one pending constraint into its group's sub-instance,
  /// creating or merging sub-instances as the group demands.
  void materializeRec(Frame &F, AssertRec &Rec) {
    assert(Rec.Sub == SubPending);
    int Root = rootOfExpr(Rec.E);
    std::vector<int> Owning = subsOfRoot(Root);
    int Sub = -1;
    if (!Owning.empty()) {
      Sub = mergeSubs(Owning);
    } else {
      // No live constraints anywhere in this group: reuse a quiescent
      // home instance of one of its variables if there is one (its old
      // clauses are all dead-guarded), else start fresh.
      for (ExprRef V : varsOf(Rec.E)) {
        auto It = VarHome.find(V->id());
        if (It != VarHome.end() && Subs[It->second] &&
            Subs[It->second]->LiveRecs == 0) {
          Sub = It->second;
          break;
        }
      }
      if (Sub < 0)
        Sub = newSub();
    }
    encodeInto(Sub, Rec.E, F.Scope);
    Rec.Sub = Sub;
    ++Subs[Sub]->LiveRecs;
  }

  void materializeAllPending() {
    if (RootUnsat)
      return;
    for (Frame &F : Frames)
      for (AssertRec &Rec : F.Asserted)
        if (Rec.Sub == SubPending)
          materializeRec(F, Rec);
  }

  /// Collapses several sub-instances into the one with the most live
  /// constraints, re-encoding the smaller instances' live constraints
  /// there (dead-scope garbage is dropped in passing — migration doubles
  /// as garbage collection). Returns the surviving sub id.
  int mergeSubs(const std::vector<int> &Ids) {
    assert(!Ids.empty());
    int Target = Ids[0];
    for (int Id : Ids)
      if (Subs[Id]->LiveRecs > Subs[Target]->LiveRecs ||
          (Subs[Id]->LiveRecs == Subs[Target]->LiveRecs && Id < Target))
        Target = Id;
    for (int Victim : Ids) {
      if (Victim == Target)
        continue;
      for (Frame &F : Frames)
        for (AssertRec &Rec : F.Asserted)
          if (Rec.Sub == Victim) {
            encodeInto(Target, Rec.E, F.Scope);
            Rec.Sub = Target;
            ++Subs[Target]->LiveRecs;
          }
      for (auto &[VarId, SubId] : VarHome)
        if (SubId == Victim)
          SubId = Target;
      // Keep the encode counters monotone: fold the dying instance's
      // totals into the retired accumulator before dropping it.
      RetiredEncode.CacheHits += Subs[Victim]->BB.stats().CacheHits;
      RetiredEncode.NodesLowered += Subs[Victim]->BB.stats().NodesLowered;
      RetiredPurged += Subs[Victim]->S.stats().PurgedSatisfied;
      Subs[Victim].reset();
      ++solverStats().GroupMerges;
    }
    // Keep the routing snapshot exact across the merge: every victim's
    // routing entry now lives in the survivor.
    if (RoutingValid)
      for (auto &KV : RootSubs) {
        std::vector<int> &V = KV.second;
        bool Dropped = false;
        V.erase(std::remove_if(V.begin(), V.end(),
                               [&](int S) {
                                 bool Victim =
                                     S != Target &&
                                     std::find(Ids.begin(), Ids.end(), S) !=
                                         Ids.end();
                                 Dropped |= Victim;
                                 return Victim;
                               }),
                V.end());
        if (Dropped &&
            std::find(V.begin(), V.end(), Target) == V.end())
          V.push_back(Target);
      }
    return Target;
  }

  std::vector<sat::Lit> liveGuardsOf(const SubSession &S) const {
    std::vector<sat::Lit> Lits;
    Lits.reserve(S.Guards.size());
    // Guard order is deterministic (sorted by scope id) so repeated
    // solves see identical assumption vectors regardless of map order.
    std::vector<std::pair<uint64_t, sat::Lit>> Sorted(S.Guards.begin(),
                                                      S.Guards.end());
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[Scope, L] : Sorted)
      Lits.push_back(L);
    return Lits;
  }

  /// True when live constraints exist outside what this check solved
  /// (sub-instance \p Target) — i.e. the check did strictly less
  /// encoding and/or SAT work than the monolithic session would have:
  /// either constraints stayed unencoded, or whole live groups went
  /// unsolved.
  bool solvedProperSubset(int Target) const {
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        if (Rec.Sub == SubPending)
          return true; // Something stayed unencoded: sliced by definition.
    for (size_t I = 0; I < Subs.size(); ++I)
      if (Subs[I] && static_cast<int>(I) != Target && Subs[I]->LiveRecs > 0)
        return true; // A live group was skipped entirely.
    return false;
  }

  /// Completes a model-cache hit into an assignment of every asserted +
  /// assumed variable (shared rule: session_common::completeModelFrom).
  void completeModel(const VarAssignment &Hit,
                     const std::vector<ExprRef> &Assumptions,
                     SolverResponse &R) {
    std::vector<ExprRef> Exprs;
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        Exprs.push_back(Rec.E);
    Exprs.insert(Exprs.end(), Assumptions.begin(), Assumptions.end());
    session_common::completeModelFrom(Hit, Exprs, R);
  }

  /// Publishes sub-instance \p Sub's current SAT model to the shared
  /// model cache: the variables of its live constraints (plus \p Assumed,
  /// for the group the assumptions were lowered into) read back from its
  /// core. Per-group footprints keep the entries small and composable.
  void publishGroupModel(int Sub, const std::vector<ExprRef> *Assumed) {
    SubSession &S = *Subs[Sub];
    VarAssignment M;
    std::unordered_set<ExprRef> Seen;
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        if (Rec.Sub == Sub)
          for (ExprRef V : varsOf(Rec.E))
            if (Seen.insert(V).second)
              M.set(V, S.BB.modelValue(V));
    if (Assumed)
      for (ExprRef A : *Assumed)
        for (ExprRef V : varsOf(A))
          if (Seen.insert(V).second)
            M.set(V, S.BB.modelValue(V));
    Cfg.Models->insert(M);
  }

  /// Per-group model composition: each variable's value is read from the
  /// sub-instance owning its live constraints (or the one its assumption
  /// was lowered into); variables constrained nowhere default to zero.
  void composeModel(const std::vector<ExprRef> &Assumptions,
                    SolverResponse &R) {
    std::unordered_set<ExprRef> Seen;
    std::vector<ExprRef> Vars;
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        collectVars(Rec.E, Vars, Seen);
    for (ExprRef A : Assumptions)
      collectVars(A, Vars, Seen);

    std::unordered_map<uint64_t, int> Owner;
    for (const Frame &F : Frames)
      for (const AssertRec &Rec : F.Asserted)
        if (Rec.Sub >= 0 && Subs[Rec.Sub])
          for (ExprRef V : varsOf(Rec.E))
            Owner.emplace(V->id(), Rec.Sub);

    for (ExprRef V : Vars) {
      int Sub = -1;
      if (auto It = Owner.find(V->id()); It != Owner.end())
        Sub = It->second;
      else if (auto AIt = VarHome.find(V->id()); AIt != VarHome.end())
        Sub = AIt->second;
      R.Model.set(V, Sub >= 0 && Subs[Sub] ? Subs[Sub]->BB.modelValue(V)
                                           : 0);
    }
  }

  void syncEncodeCounters() {
    uint64_t Hits = RetiredEncode.CacheHits;
    uint64_t Lowered = RetiredEncode.NodesLowered;
    for (const auto &SP : Subs) {
      if (!SP)
        continue;
      Hits += SP->BB.stats().CacheHits;
      Lowered += SP->BB.stats().NodesLowered;
    }
    SolverQueryStats &Stats = solverStats();
    Stats.EncodeCacheHits += Hits - SyncedCacheHits;
    Stats.EncodeNodesLowered += Lowered - SyncedNodesLowered;
    SyncedCacheHits = Hits;
    SyncedNodesLowered = Lowered;
  }

  void finishTiming(SolverQueryStats &Stats, SolverResponse &R,
                    const Timer &Total, double AssertEncode) {
    // CoreSolveSeconds keeps its historical meaning: everything spent in
    // the core, encoding included. Only the assert_-time encoding
    // happened before Total started.
    Stats.CoreSolveSeconds += Total.seconds() + AssertEncode;
    Stats.EncodeSeconds += R.EncodeSeconds;
  }

  GroupedSessionConfig Cfg;
  ScopedUnionFind UF;
  std::unordered_map<ExprRef, std::vector<ExprRef>> VarsMemo;
  std::vector<Frame> Frames;
  std::vector<std::unique_ptr<SubSession>> Subs; ///< Null = merged away.
  /// Where each assumption variable's encoding last landed, so repeated
  /// checks on the same branch condition reuse one encoding even when no
  /// asserted constraint mentions the variable yet.
  std::unordered_map<uint64_t, int> VarHome;
  /// Routing snapshot (group root → sub-instances with live constraints
  /// of that group). Valid between union-find mutations: assert_ and pop
  /// invalidate, the first check after a mutation rebuilds in one pass,
  /// encodeInto/mergeSubs keep it exact in place. Lets checkSatAssuming
  /// route assumptions and materializeRec find a group's owners in O(1)
  /// instead of rescanning every frame's records.
  std::unordered_map<int, std::vector<int>> RootSubs;
  bool RoutingValid = false;
  uint64_t NextScope = 0;
  bool RootUnsat = false;
  size_t RetiredScopes = 0;
  size_t RetiredPurged = 0; ///< Purged clauses of merged-away subs.
  BitBlastStats RetiredEncode; ///< Encode totals of merged-away subs.
  double PendingEncodeSeconds = 0;
  uint64_t SyncedCacheHits = 0;
  uint64_t SyncedNodesLowered = 0;
  uint64_t BudgetOverride = 0; ///< 0 = use Cfg.ConflictBudget.

public:
  void setConflictBudgetOverride(uint64_t Conflicts) override {
    BudgetOverride = Conflicts;
  }
};

} // namespace

std::unique_ptr<SolverSession>
symmerge::createGroupedCoreSession(ExprContext &Ctx,
                                   GroupedSessionConfig Config) {
  return std::make_unique<GroupedCoreSession>(Ctx, std::move(Config));
}
