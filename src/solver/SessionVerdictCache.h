//===- SessionVerdictCache.h - Shared session verdict cache -----*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared by both native session implementations (the
/// monolithic IncrementalCoreSession in Solvers.cpp and the per-group
/// GroupedCoreSession in GroupedSession.cpp): the session-level verdict
/// cache — declared opaque in Solver.h, defined here so both share one
/// cache with identical keying — and the small rule-bearing helpers
/// (assumption triage, dying-session encode-time flush) that must never
/// drift apart between the two, since the differential suite promises
/// the modes behave identically.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_SESSIONVERDICTCACHE_H
#define SYMMERGE_SOLVER_SESSIONVERDICTCACHE_H

#include "expr/ExprUtil.h"
#include "solver/RemoteHooks.h"
#include "solver/Solver.h"
#include "support/Hashing.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace symmerge {

/// Memoizes session check verdicts across every native session of the
/// core solver(s) it is attached to. The key is the sorted, deduplicated
/// id multiset of the asserted constraints plus the assumptions —
/// hash-consing makes structurally equal constraint sets collide on
/// purpose — so sibling states produced by forking or merging, each
/// running its own session (possibly on different worker threads and
/// different core solvers), share each other's feasibility verdicts. Only
/// Sat/Unsat verdicts are cached (never Unknown, never models).
///
/// Concurrency: the map is sharded by key hash with one mutex per shard,
/// so parallel workers contend only when their keys collide on a shard.
/// Capacity: each access stamps the entry with the shard's generation
/// counter; when a shard exceeds its slice of MaxEntries, the
/// least-recently-stamped half is evicted (generation-based LRU — exact
/// recency order inside the surviving half is not maintained, only the
/// old/young split, which is what bounds long explorations).
class SessionVerdictCache {
public:
  explicit SessionVerdictCache(const VerdictCacheOptions &Opts) {
    size_t NumShards = 1;
    while (NumShards < std::max(1u, Opts.Shards))
      NumShards *= 2;
    // A tiny MaxEntries spread over many shards would round each
    // shard's slice up and inflate the real bound; collapse shards
    // until every slice holds at least a few entries, so the requested
    // total is honored even for small limits.
    while (Opts.MaxEntries != 0 && NumShards > 1 &&
           Opts.MaxEntries / NumShards < 4)
      NumShards /= 2;
    Shards = std::vector<Shard>(NumShards);
    MaxPerShard = Opts.MaxEntries == 0
                      ? 0
                      : std::max<size_t>(1, Opts.MaxEntries / NumShards);
  }

  /// Builds the normalized lookup key (sorted, deduplicated node ids)
  /// and its hash. The caller must triage constant-true/false
  /// constraints and assumptions BEFORE building a key: trivial
  /// verdicts are decided without the cache, and a constant-false
  /// member would otherwise poison the keyed entry.
  static void makeKey(const std::vector<ExprRef> &Ids,
                      std::vector<uint64_t> &Key, uint64_t &Hash) {
    Key.clear();
    Key.reserve(Ids.size());
    for (ExprRef E : Ids)
      Key.push_back(E->id());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
    Hash = hashMix(Key.size());
    for (uint64_t Id : Key)
      Hash = hashCombine(Hash, Id);
  }

  bool lookup(const std::vector<uint64_t> &Key, uint64_t Hash,
              SolverResult &Out) {
    Shard &S = shardFor(Hash);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto Range = S.Map.equal_range(Hash);
      for (auto It = Range.first; It != Range.second; ++It) {
        if (It->second.Key == Key) {
          It->second.Generation = ++S.Generation;
          Out = It->second.Result;
          return true;
        }
      }
    }
    // Outside the shard lock: let the remote tier probe asynchronously
    // (the answer installs for future lookups; this check solves
    // locally either way).
    if (Remote)
      Remote->onVerdictMiss(Key, Hash);
    return false;
  }

  void insert(std::vector<uint64_t> Key, uint64_t Hash, SolverResult R) {
    if (R == SolverResult::Unknown)
      return;
    Shard &S = shardFor(Hash);
    uint64_t Evicted = 0;
    bool Inserted = false;
    std::vector<uint64_t> Publish; // Key copy for the post-lock hook.
    {
      std::lock_guard<std::mutex> Lock(S.M);
      // Two workers can race miss -> solve -> insert on the same key;
      // keep the map duplicate-free (verdicts are exact, so whichever
      // insert wins stores the same result).
      auto Range = S.Map.equal_range(Hash);
      for (auto It = Range.first; It != Range.second; ++It)
        if (It->second.Key == Key)
          return;
      if (Remote)
        Publish = Key;
      Inserted = true;
      S.Map.emplace(Hash, Entry{std::move(Key), R, ++S.Generation});
      if (MaxPerShard != 0 && S.Map.size() > MaxPerShard)
        Evicted = evictOldHalf(S);
    }
    if (Evicted) {
      S.Evictions.fetch_add(Evicted, std::memory_order_relaxed);
      solverStats().VerdictCacheEvictions += Evicted;
    }
    if (Remote && Inserted)
      Remote->onVerdictInsert(Publish, Hash, R);
  }

  /// Attaches (or detaches, with null) the remote cache tier. Callers
  /// must quiesce lookups/inserts around the transition — the worker
  /// daemon attaches before a batch's runner starts and detaches after
  /// it finishes.
  void setRemote(RemoteCacheHooks *R) { Remote = R; }

  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Map.size();
    }
    return N;
  }

  uint64_t evictions() const {
    uint64_t N = 0;
    for (const Shard &S : Shards)
      N += S.Evictions.load(std::memory_order_relaxed);
    return N;
  }

private:
  struct Entry {
    std::vector<uint64_t> Key;
    SolverResult Result;
    uint64_t Generation = 0; ///< Shard generation at last access.
  };
  struct Shard {
    mutable std::mutex M;
    std::unordered_multimap<uint64_t, Entry> Map;
    uint64_t Generation = 0;
    std::atomic<uint64_t> Evictions{0};

    Shard() = default;
    Shard(Shard &&) noexcept {} // Only moved while empty, at construction.
  };

  Shard &shardFor(uint64_t Hash) {
    // The low bits index the buckets inside the shard; take high bits.
    return Shards[(Hash >> 48) & (Shards.size() - 1)];
  }

  /// Drops the least-recently-stamped half of \p S (caller holds S.M).
  static uint64_t evictOldHalf(Shard &S) {
    std::vector<uint64_t> Stamps;
    Stamps.reserve(S.Map.size());
    for (const auto &[H, E] : S.Map)
      Stamps.push_back(E.Generation);
    auto Mid = Stamps.begin() + Stamps.size() / 2;
    std::nth_element(Stamps.begin(), Mid, Stamps.end());
    uint64_t Cutoff = *Mid;
    uint64_t Removed = 0;
    for (auto It = S.Map.begin(); It != S.Map.end();) {
      if (It->second.Generation <= Cutoff) {
        It = S.Map.erase(It);
        ++Removed;
      } else {
        ++It;
      }
    }
    return Removed;
  }

  std::vector<Shard> Shards;
  size_t MaxPerShard = 0;
  RemoteCacheHooks *Remote = nullptr;
};

namespace session_common {

/// Flushes encode time a session accumulated (via assert_/push) since
/// its last check into the thread-local run counters. Called from the
/// session destructors: a PathSessionHandle rebuild after worker
/// migration — or the engine's end-of-run drain — destroys sessions
/// between checks, and this wall time would otherwise vanish from the
/// encode/core totals.
inline void flushPendingEncode(double PendingSeconds) {
  if (PendingSeconds <= 0)
    return;
  SolverQueryStats &Stats = solverStats();
  Stats.EncodeSeconds += PendingSeconds;
  Stats.CoreSolveSeconds += PendingSeconds;
}

/// Distinct variables of \p Constraints in first-occurrence order — the
/// footprint a model-cache probe draws candidates from. \p VarsOf maps a
/// constraint to its variable list (both session types memoize this per
/// session, so the memo is threaded in rather than re-collected here).
template <typename VarsOfFn>
std::vector<ExprRef> distinctVarsOf(const std::vector<ExprRef> &Constraints,
                                    VarsOfFn VarsOf) {
  std::unordered_set<ExprRef> Seen;
  std::vector<ExprRef> Vars;
  for (ExprRef E : Constraints)
    for (ExprRef V : VarsOf(E))
      if (Seen.insert(V).second)
        Vars.push_back(V);
  return Vars;
}

/// Fills \p R.Model with an assignment of every variable occurring in
/// \p Exprs, reading values from the validated model-cache hit \p Hit
/// (variables it does not mention were evaluated — and are completed —
/// as zero). Shared so the two session types' model completion can
/// never drift apart.
inline void completeModelFrom(const VarAssignment &Hit,
                              const std::vector<ExprRef> &Exprs,
                              SolverResponse &R) {
  std::unordered_set<ExprRef> Seen;
  std::vector<ExprRef> Vars;
  for (ExprRef E : Exprs)
    collectVars(E, Vars, Seen);
  for (ExprRef V : Vars)
    R.Model.set(V, Hit.get(V));
}

/// Triage assumptions without encoding anything: drops constant-true
/// assumptions, collects the meaningful rest into \p Meaningful, and
/// returns the first constant-false assumption (which refutes the check
/// by itself) or null.
inline ExprRef triageAssumptions(const std::vector<ExprRef> &Assumptions,
                                 std::vector<ExprRef> &Meaningful) {
  for (ExprRef A : Assumptions) {
    if (A->isTrue())
      continue;
    if (A->isFalse())
      return A;
    Meaningful.push_back(A);
  }
  return nullptr;
}

} // namespace session_common

} // namespace symmerge

#endif // SYMMERGE_SOLVER_SESSIONVERDICTCACHE_H
