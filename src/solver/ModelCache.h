//===- ModelCache.h - Shared counterexample (model) cache -------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded concurrent cache of satisfying assignments — the sibling of
/// SessionVerdictCache. Where the verdict cache memoizes Sat/Unsat
/// verdicts by constraint-set key, the model cache keeps the *witnesses*
/// that SAT answers discard today, and reuses them KLEE-counterexample-
/// cache style: before a verdict-cache miss pays for bit-blasting and a
/// CDCL search, the session probes candidate models whose variable
/// footprint overlaps the check's constraint slice and revalidates each
/// candidate by concrete evaluation (ExprEval). A validated candidate
/// answers SAT — with a model — at evaluation cost and zero SAT calls.
///
/// Keying is by variable footprint, not constraint set: every model is
/// indexed under each variable it assigns, so a model solved for a
/// SUPERSET constraint slice is found by any probe over a subset of its
/// variables — supersets subsume subsets for free, because a model of
/// more constraints is trivially a model of fewer. Unassigned variables
/// evaluate as zero (VarAssignment's default), so validation is always a
/// definite verdict; the footprint index only steers *which* candidates
/// are worth evaluating, never soundness. Probes are bounded
/// (ProbeLimit candidate evaluations) so a miss costs a few expression
/// walks, not a scan of the cache.
///
/// Concurrency and capacity mirror the verdict cache: the per-variable
/// index is sharded by variable id with one mutex per shard, entries are
/// immutable once published (probes evaluate outside the lock through a
/// shared_ptr), and each shard evicts its least-recently-stamped half
/// past its slice of MaxEntries (generation LRU).
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_MODELCACHE_H
#define SYMMERGE_SOLVER_MODELCACHE_H

#include "expr/ExprEval.h"
#include "solver/RemoteHooks.h"
#include "support/Hashing.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace symmerge {

struct ModelCacheOptions {
  /// Total index-entry bound across all shards (a model indexed under K
  /// variables counts K entries); 0 = unbounded.
  size_t MaxEntries = 1u << 16;
  /// Concurrency shards (rounded up to a power of two).
  unsigned Shards = 16;
  /// Maximum candidate models evaluated per probe. Bounds the cost of a
  /// miss: a probe is ProbeLimit concrete evaluations at worst.
  unsigned ProbeLimit = 8;
  /// O(1) probe pre-filter (off = the measurable baseline): a 64-bit
  /// footprint signature over the variables each model assigns rejects
  /// candidates in the gather stage when the probe's signature proves
  /// the model misses at least one probe variable. Slightly narrows the
  /// candidate pool relative to the unfiltered walk — a partial model
  /// can still validate through VarAssignment's evaluate-as-zero default
  /// — trading those rare zero-default validations for never gathering
  /// (or ranking, or evaluating) a model that cannot cover the probe.
  bool SignatureFilter = true;
};

/// Shared concurrent cache of satisfying assignments. Create with
/// createModelCache() and attach via createCoreSolver(); one cache is
/// shared by every session of every worker stack, and by the async
/// test-generation pool (whose final-path models feed back in).
class ModelCache {
public:
  explicit ModelCache(const ModelCacheOptions &Opts);

  /// Probes for a cached assignment that satisfies every constraint in
  /// \p Constraints, validated by concrete evaluation. \p Vars is the
  /// distinct variable set of \p Constraints (callers memoize it per
  /// session). Candidate selection is two-staged: up to GatherLimit
  /// candidates are collected newest-first from each variable's index
  /// list, then RANKED by (validated hit count, probe-footprint overlap,
  /// recency) and only the top ProbeLimit are evaluated — a model that
  /// has validated often, or that assigns more of the probe's variables,
  /// outranks one that is merely newer, so heavy churn of single-use
  /// models cannot displace a proven witness from the probe budget. On a
  /// validated hit, fills \p Model with the cached assignment (variables
  /// it does not mention evaluate — and must be completed — as zero),
  /// bumps the entry's hit count, and returns true. Counts
  /// ModelCacheHits/Misses in the thread-local solver statistics
  /// (cache-level counters; callers that short-cut a whole check on a
  /// hit additionally count EvalSatShortcuts).
  bool probe(const std::vector<ExprRef> &Constraints,
             const std::vector<ExprRef> &Vars, VarAssignment &Model);

  /// probe() with the footprint signature of \p Vars precomputed by the
  /// caller (sessions compute it once per cache-miss pipeline). \p VarsSig
  /// must equal footprintSignature over the ids of \p Vars.
  bool probe(const std::vector<ExprRef> &Constraints,
             const std::vector<ExprRef> &Vars, uint64_t VarsSig,
             VarAssignment &Model);

  /// Publishes a satisfying assignment; its footprint (the variables it
  /// assigns) becomes its index. Duplicates of a recently inserted
  /// identical assignment are dropped.
  void insert(const VarAssignment &Model);

  /// Total index entries currently held (for tests and statistics).
  size_t size() const;
  /// Index entries dropped by the generation-LRU capacity bound.
  uint64_t evictions() const;

  /// Attaches (or detaches, with null) the remote cache tier. Probe
  /// misses and inserts notify it outside the shard locks; callers must
  /// quiesce probes/inserts around the transition.
  void setRemote(RemoteCacheHooks *R) { Remote = R; }

private:
  /// One published model, immutable after construction (except the hit
  /// counter, which is atomic); probes read it outside the shard lock
  /// through the shared_ptr.
  struct Entry {
    VarAssignment Model;
    uint64_t Hash = 0;   ///< Of the sorted (var id, value) pairs (dedup).
    uint64_t VarSig = 0; ///< Footprint signature of the assigned vars.
    /// Times this entry validated a probe. Read/written lock-free; feeds
    /// the probe ranking so proven witnesses outrank recent churn.
    mutable std::atomic<uint32_t> Hits{0};
  };
  struct Ref {
    std::shared_ptr<const Entry> E;
    uint64_t Generation = 0; ///< Shard generation at last access.
    /// Copy of E->VarSig: the gather loop rejects non-covering
    /// candidates without dereferencing the entry.
    uint64_t VarSig = 0;
  };
  /// One variable's index list plus the content-hash set that keeps it
  /// duplicate-free (a re-solved model refreshes its resident copy's
  /// recency instead of appending a clone).
  struct VarList {
    std::vector<Ref> Refs;
    std::unordered_set<uint64_t> Hashes;
  };
  struct Shard {
    mutable std::mutex M;
    /// Variable id -> models assigning that variable, most recently
    /// used last (probes walk back-to-front).
    std::unordered_map<uint64_t, VarList> Index;
    size_t RefCount = 0; ///< Sum of Index list sizes (under M).
    uint64_t Generation = 0;

    Shard() = default;
    Shard(Shard &&) noexcept {} // Only moved while empty, at construction.
  };

  Shard &shardFor(uint64_t VarId) {
    return Shards[hashMix(VarId) & (Shards.size() - 1)];
  }
  const Shard &shardFor(uint64_t VarId) const {
    return const_cast<ModelCache *>(this)->shardFor(VarId);
  }

  /// Drops the least-recently-stamped half of \p S's entries (caller
  /// holds S.M). Returns the number of index entries removed.
  static uint64_t evictOldHalf(Shard &S);

  std::vector<Shard> Shards;
  size_t MaxPerShard = 0;
  unsigned ProbeLimit = 8;
  bool SignatureFilter = true;
  std::atomic<uint64_t> Evictions{0};
  RemoteCacheHooks *Remote = nullptr;
};

std::shared_ptr<ModelCache> createModelCache(const ModelCacheOptions &Opts = {});

} // namespace symmerge

#endif // SYMMERGE_SOLVER_MODELCACHE_H
