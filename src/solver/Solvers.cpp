//===- Solvers.cpp - Solver layers: core, cache, independence, brute ------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include "expr/ExprRewrite.h"
#include "expr/ExprUtil.h"
#include "solver/BitBlaster.h"
#include "solver/CoreCache.h"
#include "solver/GroupedSession.h"
#include "solver/ModelCache.h"
#include "solver/PoisonCache.h"
#include "solver/Sat.h"
#include "solver/SessionVerdictCache.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace symmerge;

Solver::~Solver() = default;
SolverSession::~SolverSession() = default;

SolverQueryStats &symmerge::solverStats() {
  // Thread-local: engine workers count into their own instance and the
  // engine merges the deltas (operator+=) at shutdown, so the counters
  // are race-free without putting an atomic on every solver hot path.
  thread_local SolverQueryStats Stats;
  return Stats;
}

SolverQueryStats &SolverQueryStats::operator+=(const SolverQueryStats &O) {
  Queries += O.Queries;
  CoreQueries += O.CoreQueries;
  CacheHits += O.CacheHits;
  SatResults += O.SatResults;
  UnsatResults += O.UnsatResults;
  CoreSolveSeconds += O.CoreSolveSeconds;
  SessionsOpened += O.SessionsOpened;
  SessionQueries += O.SessionQueries;
  AssumptionQueries += O.AssumptionQueries;
  EncodeCacheHits += O.EncodeCacheHits;
  EncodeNodesLowered += O.EncodeNodesLowered;
  EncodeSeconds += O.EncodeSeconds;
  VerdictCacheHits += O.VerdictCacheHits;
  VerdictCacheMisses += O.VerdictCacheMisses;
  VerdictCacheEvictions += O.VerdictCacheEvictions;
  GroupSubSessions += O.GroupSubSessions;
  GroupMerges += O.GroupMerges;
  GroupSlicedSolves += O.GroupSlicedSolves;
  ModelCacheHits += O.ModelCacheHits;
  ModelCacheMisses += O.ModelCacheMisses;
  EvalSatShortcuts += O.EvalSatShortcuts;
  ModelCacheEvictions += O.ModelCacheEvictions;
  CoreCacheHits += O.CoreCacheHits;
  CoreCacheMisses += O.CoreCacheMisses;
  CoreSubsumptions += O.CoreSubsumptions;
  CoreCacheEvictions += O.CoreCacheEvictions;
  CoreCacheProbeVisits += O.CoreCacheProbeVisits;
  CoreCacheSigSkips += O.CoreCacheSigSkips;
  CoreCacheShardSkips += O.CoreCacheShardSkips;
  ModelCacheSigSkips += O.ModelCacheSigSkips;
  PoisonedQueries += O.PoisonedQueries;
  PoisonedInserts += O.PoisonedInserts;
  PoisonCacheEvictions += O.PoisonCacheEvictions;
  UnknownsObserved += O.UnknownsObserved;
  return *this;
}

// Kept adjacent to operator+= so the two field lists stay in lockstep;
// a counter added to one and not the other is caught in review here.
SolverQueryStats &SolverQueryStats::operator-=(const SolverQueryStats &O) {
  Queries -= O.Queries;
  CoreQueries -= O.CoreQueries;
  CacheHits -= O.CacheHits;
  SatResults -= O.SatResults;
  UnsatResults -= O.UnsatResults;
  CoreSolveSeconds -= O.CoreSolveSeconds;
  SessionsOpened -= O.SessionsOpened;
  SessionQueries -= O.SessionQueries;
  AssumptionQueries -= O.AssumptionQueries;
  EncodeCacheHits -= O.EncodeCacheHits;
  EncodeNodesLowered -= O.EncodeNodesLowered;
  EncodeSeconds -= O.EncodeSeconds;
  VerdictCacheHits -= O.VerdictCacheHits;
  VerdictCacheMisses -= O.VerdictCacheMisses;
  VerdictCacheEvictions -= O.VerdictCacheEvictions;
  GroupSubSessions -= O.GroupSubSessions;
  GroupMerges -= O.GroupMerges;
  GroupSlicedSolves -= O.GroupSlicedSolves;
  ModelCacheHits -= O.ModelCacheHits;
  ModelCacheMisses -= O.ModelCacheMisses;
  EvalSatShortcuts -= O.EvalSatShortcuts;
  ModelCacheEvictions -= O.ModelCacheEvictions;
  CoreCacheHits -= O.CoreCacheHits;
  CoreCacheMisses -= O.CoreCacheMisses;
  CoreSubsumptions -= O.CoreSubsumptions;
  CoreCacheEvictions -= O.CoreCacheEvictions;
  CoreCacheProbeVisits -= O.CoreCacheProbeVisits;
  CoreCacheSigSkips -= O.CoreCacheSigSkips;
  CoreCacheShardSkips -= O.CoreCacheShardSkips;
  ModelCacheSigSkips -= O.ModelCacheSigSkips;
  PoisonedQueries -= O.PoisonedQueries;
  PoisonedInserts -= O.PoisonedInserts;
  PoisonCacheEvictions -= O.PoisonCacheEvictions;
  UnknownsObserved -= O.UnknownsObserved;
  return *this;
}

bool SolverSession::mayBeTrue(ExprRef E) {
  assert(E->width() == 1 && "feasibility check needs a boolean");
  if (E->isTrue())
    return true;
  if (E->isFalse())
    return false;
  // Unknown counts as "may": a resource limit never prunes a path.
  return !checkSatAssuming(E).isUnsat();
}

bool SolverSession::mayBeFalse(ExprRef E) { return mayBeTrue(Ctx.mkNot(E)); }

bool Solver::mayBeTrue(const Query &Q, ExprRef E) {
  assert(E->width() == 1 && "feasibility check needs a boolean");
  if (E->isTrue())
    return true;
  if (E->isFalse())
    return false;
  // Unknown is treated as "may": the engine never prunes on a resource
  // limit, it only loses the ability to prove infeasibility.
  return checkSat(Q.withConstraint(E), nullptr) != SolverResult::Unsat;
}

bool Solver::mayBeFalse(const Query &Q, ExprRef E) {
  return mayBeTrue(Q, Ctx.mkNot(E));
}

bool Solver::getModel(const Query &Q, VarAssignment &Model) {
  return checkSat(Q, &Model) == SolverResult::Sat;
}

namespace {

//===----------------------------------------------------------------------===
// Sessions
//===----------------------------------------------------------------------===

/// Generic fallback session over any solver: remembers the asserted
/// constraints and replays them as one-shot checkSat queries. Opened on a
/// layered stack it still benefits from caching, equality substitution,
/// and independence slicing — this is the measured fresh-instance
/// baseline that incremental sessions are compared against.
class QuerySession : public SolverSession {
public:
  QuerySession(ExprContext &Ctx, Solver &S) : SolverSession(Ctx), S(S) {}

  void push() override { ScopeMarks.push_back(Asserted.size()); }

  void pop() override {
    assert(!ScopeMarks.empty() && "pop without matching push");
    Asserted.resize(ScopeMarks.back());
    ScopeMarks.pop_back();
    ++Pops;
  }

  void assert_(ExprRef E) override {
    assert(E->width() == 1 && "only width-1 expressions can be asserted");
    if (!E->isTrue())
      Asserted.push_back(E);
  }

  SolverResponse checkSat(bool WantModel) override {
    return checkSatAssuming(std::vector<ExprRef>{}, WantModel);
  }

  SessionHealth health() const override {
    SessionHealth H;
    H.AssertedConstraints = Asserted.size();
    H.LiveScopes = ScopeMarks.size();
    H.RetiredScopes = Pops;
    return H;
  }

  SolverResponse checkSatAssuming(const std::vector<ExprRef> &Assumptions,
                                  bool WantModel) override {
    ++solverStats().SessionQueries;
    if (!Assumptions.empty())
      ++solverStats().AssumptionQueries;
    SolverResponse R;
    Query Q(Asserted);
    for (ExprRef A : Assumptions) {
      if (A->isTrue())
        continue;
      if (A->isFalse()) {
        R.Result = SolverResult::Unsat;
        R.FailedAssumptions = {A};
        return R;
      }
      Q.Constraints.push_back(A);
    }
    Timer T;
    R.Result = S.checkSat(Q, WantModel ? &R.Model : nullptr);
    R.SolveSeconds = T.seconds();
    // One-shot layers cannot name the refuting subset; over-approximate
    // with every assumption.
    if (R.isUnsat())
      R.FailedAssumptions = Assumptions;
    return R;
  }

private:
  Solver &S;
  std::vector<ExprRef> Asserted;
  std::vector<size_t> ScopeMarks;
  size_t Pops = 0;
};

} // namespace

//===----------------------------------------------------------------------===
// Session-level verdict cache
//===----------------------------------------------------------------------===
// The class definition lives in SessionVerdictCache.h so both native
// session implementations (the monolithic IncrementalCoreSession below
// and the per-group GroupedCoreSession in GroupedSession.cpp) share one
// cache with identical keying.

std::shared_ptr<SessionVerdictCache>
symmerge::createVerdictCache(const VerdictCacheOptions &Opts) {
  return std::make_shared<SessionVerdictCache>(Opts);
}

size_t symmerge::verdictCacheSize(const SessionVerdictCache &Cache) {
  return Cache.size();
}

uint64_t symmerge::verdictCacheEvictions(const SessionVerdictCache &Cache) {
  return Cache.evictions();
}

namespace {

//===----------------------------------------------------------------------===
// CoreSolver: bitblast + CDCL
//===----------------------------------------------------------------------===

/// Natively incremental session: one persistent SAT instance plus one
/// persistent Tseitin encoding for the session's whole lifetime.
/// Root-scope constraints are asserted as plain clauses; scopes opened
/// with push() guard their clauses behind a fresh activation literal that
/// is assumed while the scope is active and permanently negated by pop(),
/// so retraction never touches the clause database. checkSatAssuming
/// lowers the hypothesis to a single literal and hands it to
/// SatSolver::solveAssuming — nothing already encoded is encoded again,
/// and the CDCL core carries its learnt clauses across checks.
class IncrementalCoreSession : public SolverSession {
public:
  /// Root-satisfied learnt clauses are purged every this many pops (the
  /// guard-literal garbage collection that bounds long-session memory).
  static constexpr size_t PurgeInterval = 16;

  /// Shares GroupedSessionConfig with the grouped implementation so the
  /// two native session types can never drift apart on configuration.
  IncrementalCoreSession(ExprContext &Ctx, GroupedSessionConfig Config)
      : SolverSession(Ctx), Cfg(std::move(Config)), BB(S) {
    Frames.push_back(Frame{sat::LitUndef, {}});
    if (Cfg.WallBudgetSeconds > 0)
      S.setWallBudgetSeconds(Cfg.WallBudgetSeconds);
  }

  ~IncrementalCoreSession() override {
    session_common::flushPendingEncode(PendingEncodeSeconds);
  }

  void push() override {
    Timer T;
    Frames.push_back(Frame{sat::mkLit(S.newVar()), {}});
    PendingEncodeSeconds += T.seconds();
  }

  void pop() override {
    assert(Frames.size() > 1 && "pop without matching push");
    // Permanently disable the scope's guarded clauses; the guard variable
    // is never assumed again.
    S.addClause(~Frames.back().Guard);
    Frames.pop_back();
    ++RetiredScopes;
    // The dead guard permanently satisfies the scope's (~guard v lit)
    // clauses and any learnt clause mentioning it; collect that garbage
    // periodically so a long-lived (per-state) session's clause database
    // tracks the live scopes, not the pop history.
    if (RetiredScopes % PurgeInterval == 0 && S.okay())
      S.purgeSatisfiedClauses();
  }

  SessionHealth health() const override {
    SessionHealth H;
    for (const Frame &F : Frames)
      H.AssertedConstraints += F.Asserted.size();
    H.LiveScopes = Frames.size() - 1;
    H.RetiredScopes = RetiredScopes;
    H.ClauseCount = S.numClauses();
    H.LearntCount = S.numLearnts();
    H.MemoryBytes = S.memoryFootprintBytes() + BB.footprintBytes();
    H.PurgedClauses = S.stats().PurgedSatisfied;
    return H;
  }

  void assert_(ExprRef E) override {
    assert(E->width() == 1 && "only width-1 expressions can be asserted");
    Frame &F = Frames.back();
    F.Asserted.push_back(E);
    if (E->isTrue())
      return;
    if (E->isFalse()) {
      F.HasFalse = true;
      if (Frames.size() == 1)
        RootUnsat = true;
    }
    // With a verdict cache or model cache attached, encoding is deferred
    // until a check actually reaches the SAT core: a state whose every
    // feasibility check hits a cache (a shared verdict, or a cached
    // model revalidated by evaluation) never Tseitin-encodes its path
    // condition at all. Without any cache every check solves, so encode
    // eagerly (the encode time then lands outside the check, where the
    // caller's per-response accounting expects it).
    if (!Cfg.Cache && !Cfg.Models && !Cfg.Cores && !Cfg.Poison)
      materialize();
  }

  /// Lowers every asserted-but-unencoded constraint into the SAT core.
  void materialize() {
    if (RootUnsat || !S.okay())
      return;
    Timer T;
    for (Frame &F : Frames) {
      for (; F.Materialized < F.Asserted.size(); ++F.Materialized) {
        ExprRef E = F.Asserted[F.Materialized];
        if (E->isTrue())
          continue;
        const bool Root = F.Guard == sat::LitUndef;
        if (E->isFalse()) {
          if (Root)
            RootUnsat = true;
          else
            S.addClause(~F.Guard);
          continue;
        }
        sat::Lit L = BB.literalFor(E);
        if (Root)
          S.addClause(L);
        else
          S.addClause(~F.Guard, L);
      }
    }
    PendingEncodeSeconds += T.seconds();
    syncEncodeCounters();
  }

  /// True while any live scope asserted a constant-false constraint.
  bool anyFrameFalse() const {
    for (const Frame &F : Frames)
      if (F.HasFalse)
        return true;
    return false;
  }

  SolverResponse checkSat(bool WantModel) override {
    return checkSatAssuming(std::vector<ExprRef>{}, WantModel);
  }

  SolverResponse checkSatAssuming(const std::vector<ExprRef> &Assumptions,
                                  bool WantModel) override {
    SolverQueryStats &Stats = solverStats();
    ++Stats.CoreQueries;
    if (Cfg.Tracked) {
      ++Stats.Queries;
      ++Stats.SessionQueries;
      if (!Assumptions.empty())
        ++Stats.AssumptionQueries;
    }

    SolverResponse R;
    // Encoding done by assert_ since the last check is charged to this
    // check's response; it happened outside Total, so the two add up.
    const double AssertEncode = PendingEncodeSeconds;
    R.EncodeSeconds = AssertEncode;
    PendingEncodeSeconds = 0;
    Timer Total;

    // Triage the assumptions without encoding anything: a constant-false
    // one fails by itself, and the remaining set feeds the verdict-cache
    // key, so a cache hit costs no Tseitin work at all.
    std::vector<ExprRef> Meaningful;
    ExprRef TriviallyFalse =
        session_common::triageAssumptions(Assumptions, Meaningful);

    if (RootUnsat || TriviallyFalse || anyFrameFalse() || !S.okay()) {
      R.Result = SolverResult::Unsat;
      if (TriviallyFalse)
        R.FailedAssumptions = {TriviallyFalse};
      ++Stats.UnsatResults;
      finishTiming(Stats, R, Total, AssertEncode);
      return R;
    }

    // Session-level verdict cache: keyed by the normalized union of the
    // asserted constraints and the assumptions. Model requests always go
    // to the core (the cache stores verdicts, not assignments). Under the
    // feasible-prefix promise the key is sliced down to the constraint
    // group variable-reachable from the assumptions: the rest of the
    // prefix is satisfiable over disjoint variables, so it cannot change
    // the verdict — and sibling states whose path conditions differ only
    // in irrelevant conjuncts now share one cache line.
    //
    // The model cache probes the SAME constraint list: a cached
    // assignment that concretely satisfies every member answers SAT
    // without touching the SAT core (sound under the promise by the same
    // disjoint-variables argument; unconditionally sound when the list
    // is the full asserted set). Model requests may be served too — the
    // validated assignment IS a model of the full set then.
    std::vector<uint64_t> Key;
    uint64_t KeyHash = 0;
    const bool UseCache = Cfg.Cache && !WantModel;
    // The core cache and the poison cache key on the same normalized
    // constraint multiset as the verdict cache, so one makeKey serves
    // all three probes.
    const bool HaveKey = UseCache || Cfg.Cores || Cfg.Poison;
    if (HaveKey || Cfg.Models) {
      std::vector<ExprRef> Constraints;
      for (const Frame &F : Frames)
        for (ExprRef E : F.Asserted)
          if (!E->isTrue())
            Constraints.push_back(E);
      if (Cfg.FeasiblePrefix && !Meaningful.empty() && !WantModel)
        Constraints = sliceReachable(Constraints, Meaningful);
      Constraints.insert(Constraints.end(), Meaningful.begin(),
                         Meaningful.end());
      // The key's footprint signature is computed ONCE here and threaded
      // through every probe of the miss pipeline (core cache now;
      // signatures are cheap but the pipeline runs per check).
      uint64_t KeySig = 0;
      if (HaveKey) {
        SessionVerdictCache::makeKey(Constraints, Key, KeyHash);
        KeySig = footprintSignature(Key);
      }
      if (UseCache) {
        SolverResult Hit;
        if (Cfg.Cache->lookup(Key, KeyHash, Hit)) {
          ++Stats.VerdictCacheHits;
          R.Result = Hit;
          if (R.isUnsat()) {
            ++Stats.UnsatResults;
            // Like fallback sessions, a cached refutation cannot name the
            // responsible subset; over-approximate with every assumption.
            R.FailedAssumptions = Meaningful;
          } else {
            ++Stats.SatResults;
          }
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
        ++Stats.VerdictCacheMisses;
      }
      if (Cfg.Models) {
        VarAssignment Hit;
        std::vector<ExprRef> Vars = varsOfAll(Constraints);
        uint64_t VarsSig = 0;
        for (ExprRef V : Vars)
          VarsSig |= footprintBit(V->id());
        if (Cfg.Models->probe(Constraints, Vars, VarsSig, Hit)) {
          ++Stats.EvalSatShortcuts;
          ++Stats.SatResults;
          R.Result = SolverResult::Sat;
          if (WantModel)
            completeModel(Hit, Assumptions, R);
          // The evaluation proof is exact; share the verdict too.
          if (UseCache)
            Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
          finishTiming(Stats, R, Total, AssertEncode);
          return R;
        }
      }
      // Refutation reuse: a cached UNSAT core that is a subset of the
      // current constraint set refutes it with zero SAT calls — the dual
      // of the model-cache shortcut above. Sound for model requests too:
      // an UNSAT set has no model to return. Note the probe runs on the
      // same key ids the verdict cache missed on, so a hit here is a
      // strictly-new refutation (a subsuming core learned under a
      // DIFFERENT key).
      if (Cfg.Cores && Cfg.Cores->probe(Key, KeySig)) {
        R.Result = SolverResult::Unsat;
        ++Stats.UnsatResults;
        // Cores name constraints, not the caller's assumption subset;
        // over-approximate like verdict-cache refutations do.
        R.FailedAssumptions = Meaningful;
        // The subsumption proof is exact; share the verdict.
        if (UseCache)
          Cfg.Cache->insert(std::vector<uint64_t>(Key), KeyHash, R.Result);
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
      // Poison fence, deliberately AFTER every exact probe: a poisoned
      // key that some cache has since learned an exact answer for should
      // get that answer, not a stale Unknown.
      if (Cfg.Poison && Cfg.Poison->contains(Key, KeyHash)) {
        R.Result = SolverResult::Unknown;
        ++Stats.UnknownsObserved;
        finishTiming(Stats, R, Total, AssertEncode);
        return R;
      }
    }

    // Materialize any deferred encoding, then lower the assumptions onto
    // the persistent encoding. (Materialization can discover root
    // unsatisfiability that assert_ deferred.)
    materialize();
    R.EncodeSeconds += PendingEncodeSeconds;
    PendingEncodeSeconds = 0;
    if (RootUnsat || !S.okay()) {
      R.Result = SolverResult::Unsat;
      ++Stats.UnsatResults;
      finishTiming(Stats, R, Total, AssertEncode);
      return R;
    }
    std::vector<sat::Lit> Lits;
    std::vector<std::pair<sat::Lit, ExprRef>> LitExprs;
    for (size_t I = 1; I < Frames.size(); ++I)
      Lits.push_back(Frames[I].Guard);
    for (ExprRef A : Meaningful) {
      Timer TE;
      sat::Lit L = BB.literalFor(A);
      R.EncodeSeconds += TE.seconds();
      Lits.push_back(L);
      LitExprs.push_back({L, A});
    }
    syncEncodeCounters();

    // Memory watermark: a solve that balloons the clause database past
    // the per-query delta is poisoned for re-entry even when it finishes
    // with an exact verdict (which is still returned and cached).
    const bool TrackMem = Cfg.Poison && Cfg.PoisonMemoryDeltaBytes > 0;
    const size_t MemBefore = TrackMem ? S.memoryFootprintBytes() : 0;

    Timer TS;
    bool IsSat = S.solveAssuming(
        Lits, BudgetOverride ? BudgetOverride : Cfg.ConflictBudget);
    R.SolveSeconds = TS.seconds();

    if (TrackMem && !Key.empty() &&
        S.memoryFootprintBytes() >
            MemBefore + Cfg.PoisonMemoryDeltaBytes)
      Cfg.Poison->insert(std::vector<uint64_t>(Key), KeyHash);

    if (!IsSat && S.budgetExceeded()) {
      R.Result = SolverResult::Unknown;
      ++Stats.UnknownsObserved;
      // Remember the blown budget: the next arrival of this key gets
      // Unknown up front instead of burning the budget again.
      if (Cfg.Poison && !Key.empty())
        Cfg.Poison->insert(std::vector<uint64_t>(Key), KeyHash);
    } else if (!IsSat) {
      R.Result = SolverResult::Unsat;
      ++Stats.UnsatResults;
      // Map the failing literals back to the caller's assumptions;
      // scope-guard literals stay internal.
      for (sat::Lit L : S.failedAssumptions()) {
        for (const auto &[AL, AE] : LitExprs) {
          if (AL == L) {
            R.FailedAssumptions.push_back(AE);
            break;
          }
        }
      }
      // Publish the refutation: root-scope constraints are asserted
      // unconditionally, a guarded scope contributed only if its guard
      // literal is in the failed set (otherwise the core can set the
      // guard false and ignore the scope), and the failed assumptions
      // contributed by construction. That set is jointly UNSAT, so any
      // future query containing it is UNSAT by subsumption.
      if (Cfg.Cores) {
        std::vector<ExprRef> Core;
        auto Failed = [&](sat::Lit G) {
          for (sat::Lit L : S.failedAssumptions())
            if (L == G)
              return true;
          return false;
        };
        for (size_t I = 0; I < Frames.size(); ++I) {
          if (I != 0 && !Failed(Frames[I].Guard))
            continue;
          for (ExprRef E : Frames[I].Asserted)
            if (!E->isTrue())
              Core.push_back(E);
        }
        for (ExprRef A : R.FailedAssumptions)
          Core.push_back(A);
        if (!Core.empty())
          Cfg.Cores->publish(Core);
      }
    } else {
      R.Result = SolverResult::Sat;
      ++Stats.SatResults;
      if (WantModel || Cfg.Models) {
        std::unordered_set<ExprRef> Seen;
        std::vector<ExprRef> Vars;
        for (const Frame &F : Frames)
          for (ExprRef E : F.Asserted)
            collectVars(E, Vars, Seen);
        for (ExprRef A : Assumptions)
          collectVars(A, Vars, Seen);
        VarAssignment M;
        for (ExprRef V : Vars)
          M.set(V, BB.modelValue(V));
        // Publish the witness: future checks whose slice this assignment
        // concretely satisfies answer SAT without a SAT call.
        if (Cfg.Models)
          Cfg.Models->insert(M);
        if (WantModel)
          R.Model = std::move(M);
      }
    }
    if (UseCache)
      Cfg.Cache->insert(std::move(Key), KeyHash, R.Result);
    finishTiming(Stats, R, Total, AssertEncode);
    return R;
  }

private:
  struct Frame {
    sat::Lit Guard; ///< LitUndef for the root scope.
    std::vector<ExprRef> Asserted;
    size_t Materialized = 0; ///< Prefix of Asserted already encoded.
    bool HasFalse = false;   ///< A constant-false constraint was asserted.
  };

  /// The variables of \p E, collected once per session and memoized (the
  /// same conjuncts are sliced at every check of a long-lived session).
  const std::vector<ExprRef> &varsOf(ExprRef E) {
    auto [It, Inserted] = VarsMemo.emplace(E, std::vector<ExprRef>());
    if (Inserted)
      It->second = collectVars(E);
    return It->second;
  }

  /// Distinct variables of a constraint list (via the per-session memo) —
  /// the footprint a model-cache probe draws candidates from.
  std::vector<ExprRef> varsOfAll(const std::vector<ExprRef> &Constraints) {
    return session_common::distinctVarsOf(
        Constraints, [this](ExprRef E) -> const std::vector<ExprRef> & {
          return varsOf(E);
        });
  }

  /// Completes a model-cache hit into an assignment of every asserted +
  /// assumed variable (shared rule: session_common::completeModelFrom).
  void completeModel(const VarAssignment &Hit,
                     const std::vector<ExprRef> &Assumptions,
                     SolverResponse &R) {
    std::vector<ExprRef> Exprs;
    for (const Frame &F : Frames)
      Exprs.insert(Exprs.end(), F.Asserted.begin(), F.Asserted.end());
    Exprs.insert(Exprs.end(), Assumptions.begin(), Assumptions.end());
    session_common::completeModelFrom(Hit, Exprs, R);
  }

  /// Returns the subset of \p Constraints sharing variables (transitively)
  /// with \p Seeds — the only conjuncts that can influence a verdict when
  /// the rest is known satisfiable over disjoint variables.
  std::vector<ExprRef> sliceReachable(const std::vector<ExprRef> &Constraints,
                                      const std::vector<ExprRef> &Seeds) {
    std::unordered_set<ExprRef> Reached;
    for (ExprRef A : Seeds)
      for (ExprRef V : varsOf(A))
        Reached.insert(V);
    std::vector<char> In(Constraints.size(), 0);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t I = 0; I < Constraints.size(); ++I) {
        if (In[I])
          continue;
        const std::vector<ExprRef> &Vars = varsOf(Constraints[I]);
        bool Touches = false;
        for (ExprRef V : Vars) {
          if (Reached.count(V)) {
            Touches = true;
            break;
          }
        }
        if (!Touches)
          continue;
        In[I] = 1;
        Changed = true;
        for (ExprRef V : Vars)
          Reached.insert(V);
      }
    }
    std::vector<ExprRef> Out;
    for (size_t I = 0; I < Constraints.size(); ++I)
      if (In[I])
        Out.push_back(Constraints[I]);
    return Out;
  }

  void syncEncodeCounters() {
    SolverQueryStats &Stats = solverStats();
    const BitBlastStats &B = BB.stats();
    Stats.EncodeCacheHits += B.CacheHits - SyncedCacheHits;
    Stats.EncodeNodesLowered += B.NodesLowered - SyncedNodesLowered;
    SyncedCacheHits = B.CacheHits;
    SyncedNodesLowered = B.NodesLowered;
  }

  void finishTiming(SolverQueryStats &Stats, SolverResponse &R,
                    const Timer &Total, double AssertEncode) {
    // CoreSolveSeconds keeps its historical meaning: everything spent in
    // the core, encoding included. Assumption-encoding time is already
    // inside Total; only the assert_-time encoding happened before it.
    Stats.CoreSolveSeconds += Total.seconds() + AssertEncode;
    Stats.EncodeSeconds += R.EncodeSeconds;
  }

  GroupedSessionConfig Cfg;
  std::unordered_map<ExprRef, std::vector<ExprRef>> VarsMemo;
  sat::SatSolver S;
  BitBlaster BB;
  std::vector<Frame> Frames;
  bool RootUnsat = false;
  size_t RetiredScopes = 0;
  double PendingEncodeSeconds = 0;
  uint64_t SyncedCacheHits = 0;
  uint64_t SyncedNodesLowered = 0;
  uint64_t BudgetOverride = 0; ///< 0 = use Cfg.ConflictBudget.

public:
  void setConflictBudgetOverride(uint64_t Conflicts) override {
    BudgetOverride = Conflicts;
  }
};

class CoreSolver : public Solver {
public:
  CoreSolver(ExprContext &Ctx, CoreSolverOptions Options)
      : Solver(Ctx), Opts(std::move(Options)) {
    if (!Opts.IncrementalSessions) {
      // One-shot fallback sessions replay through checkSat, which never
      // touches the shared caches; drop them so nobody pays for upkeep.
      Opts.Verdicts = nullptr;
      Opts.Models = nullptr;
      Opts.Cores = nullptr;
      Opts.Poison = nullptr;
    }
  }

  /// The one-shot entry point is a thin shim over a one-shot session, so
  /// both APIs share a single encode-and-solve path. One-shot queries
  /// skip every shared cache: the CachingSolver layer above already
  /// memoizes them (with models), and one-shot model generation must
  /// stay a pure function of the query (see the Models field note). The
  /// budgets DO apply — a one-shot query can blow up like any other.
  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    GroupedSessionConfig Cfg;
    Cfg.ConflictBudget = Opts.ConflictBudget;
    Cfg.WallBudgetSeconds = Opts.WallBudgetSeconds;
    Cfg.Tracked = false;
    IncrementalCoreSession Sess(Ctx, std::move(Cfg));
    for (ExprRef E : Q.Constraints)
      Sess.assert_(E);
    SolverResponse R = Sess.checkSat(Model != nullptr);
    if (Model && R.isSat())
      *Model = std::move(R.Model);
    return R.Result;
  }

  bool supportsNativeSessions() const override {
    return Opts.IncrementalSessions;
  }

  std::unique_ptr<SolverSession> openSession() override {
    return openSession(SessionOptions{});
  }

  std::unique_ptr<SolverSession>
  openSession(const SessionOptions &SessOpts) override {
    if (!Opts.IncrementalSessions)
      return Solver::openSession();
    ++solverStats().SessionsOpened;
    // A conflict or wall budget can return Unknown, which engines treat
    // as feasible — the caller's feasible-prefix promise can then be
    // violated through no fault of its own, so refuse it locally rather
    // than trusting every driver to remember the interaction. (The
    // memory watermark is exempt: it fences re-entry but the original
    // verdict stays exact.)
    bool Feasible = SessOpts.FeasiblePrefix && Opts.ConflictBudget == 0 &&
                    Opts.WallBudgetSeconds == 0;
    GroupedSessionConfig Cfg;
    Cfg.ConflictBudget = Opts.ConflictBudget;
    Cfg.WallBudgetSeconds = Opts.WallBudgetSeconds;
    Cfg.PoisonMemoryDeltaBytes = Opts.PoisonMemoryDeltaBytes;
    Cfg.Tracked = true;
    Cfg.FeasiblePrefix = Feasible;
    Cfg.Cache = Opts.Verdicts;
    Cfg.Models = Opts.Models;
    Cfg.Cores = Opts.Cores;
    Cfg.Poison = Opts.Poison;
    if (Opts.GroupSessions)
      return createGroupedCoreSession(Ctx, std::move(Cfg));
    return std::make_unique<IncrementalCoreSession>(Ctx, std::move(Cfg));
  }

private:
  /// Shared-cache notes: Models is never probed by one-shot checkSat()
  /// shims — the cache could return a DIFFERENT (equally valid) model
  /// than a fresh solve, and one-shot model generation must stay a pure
  /// function of the query so generated test inputs are bit-identical
  /// across cache configurations and schedules. Cores/Poison follow the
  /// same rule for symmetry (and because the CachingSolver layer above
  /// already memoizes one-shot queries).
  CoreSolverOptions Opts;
};

//===----------------------------------------------------------------------===
// CachingSolver
//===----------------------------------------------------------------------===

/// Caches results keyed by the sorted multiset of constraint node ids.
/// Because expressions are hash-consed, two structurally equal queries
/// always map to the same key.
/// Session opening for wrapper layers: when the core supports native
/// incremental sessions, the wrappers step aside and hand out the core's
/// session directly — the persistent encoding replaces what the one-shot
/// layers would have recomputed per query. Otherwise the generic fallback
/// session is opened over the wrapper itself, so every one-shot
/// optimization still applies to session queries.
#define SYMMERGE_FORWARD_SESSIONS_TO_INNER()                                   \
  bool supportsNativeSessions() const override {                               \
    return Inner->supportsNativeSessions();                                    \
  }                                                                            \
  std::unique_ptr<SolverSession> openSession() override {                      \
    return Inner->supportsNativeSessions() ? Inner->openSession()              \
                                           : Solver::openSession();            \
  }                                                                            \
  std::unique_ptr<SolverSession> openSession(const SessionOptions &Opts)       \
      override {                                                               \
    return Inner->supportsNativeSessions() ? Inner->openSession(Opts)          \
                                           : Solver::openSession();            \
  }

class CachingSolver : public Solver {
public:
  CachingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  SYMMERGE_FORWARD_SESSIONS_TO_INNER()

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::vector<uint64_t> Key;
    Key.reserve(Q.Constraints.size());
    for (ExprRef E : Q.Constraints)
      Key.push_back(E->id());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());

    uint64_t H = hashMix(Key.size());
    for (uint64_t Id : Key)
      H = hashCombine(H, Id);

    auto Range = Cache.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It) {
      if (It->second.Key != Key)
        continue;
      ++solverStats().CacheHits;
      if (Model && It->second.Result == SolverResult::Sat)
        *Model = It->second.Model;
      return It->second.Result;
    }

    VarAssignment Local;
    SolverResult R = Inner->checkSat(Q, &Local);
    if (R != SolverResult::Unknown)
      Cache.emplace(H, Entry{std::move(Key), R, Local});
    if (Model && R == SolverResult::Sat)
      *Model = Local;
    return R;
  }

private:
  struct Entry {
    std::vector<uint64_t> Key;
    SolverResult Result;
    VarAssignment Model;
  };
  std::unique_ptr<Solver> Inner;
  std::unordered_multimap<uint64_t, Entry> Cache;
};

//===----------------------------------------------------------------------===
// SimplifyingSolver
//===----------------------------------------------------------------------===

/// Substitutes `var == constant` equalities into the remaining
/// constraints (KLEE's ConstraintManager rewriting, done at the solver
/// boundary so engine state — and the positional path-condition prefixes
/// merging relies on — stays untouched).
class SimplifyingSolver : public Solver {
public:
  SimplifyingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  SYMMERGE_FORWARD_SESSIONS_TO_INNER()

  /// If \p E pins a variable to a constant — `var == k`, possibly through
  /// zero-extensions (`zext(var) == k`, the shape branch conditions on
  /// array cells take) — returns the variable; null otherwise. \p Value
  /// receives the constant at the variable's width. \p Infeasible is set
  /// when the constant cannot fit, i.e. the equality itself is false.
  ExprRef definedVar(ExprRef E, uint64_t &Value, bool &Infeasible) const {
    Infeasible = false;
    if (E->kind() != ExprKind::Eq || !E->operand(1)->isConstant())
      return nullptr;
    ExprRef Base = E->operand(0);
    while (Base->kind() == ExprKind::ZExt)
      Base = Base->operand(0);
    if (Base->kind() != ExprKind::Var)
      return nullptr;
    uint64_t K = E->operand(1)->constantValue();
    if (ExprContext::maskToWidth(K, Base->width()) != K) {
      Infeasible = true; // zext(var) can never reach this value.
      return nullptr;
    }
    Value = K;
    return Base;
  }

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::unordered_map<ExprRef, ExprRef> Replacements;
    for (ExprRef E : Q.Constraints) {
      uint64_t Value;
      bool Infeasible;
      ExprRef Var = definedVar(E, Value, Infeasible);
      if (Infeasible)
        return SolverResult::Unsat;
      if (Var)
        Replacements.emplace(Var, Ctx.mkConst(Value, Var->width()));
    }
    if (Replacements.empty())
      return Inner->checkSat(Q, Model);

    Query Rewritten;
    Rewritten.Constraints.reserve(Q.Constraints.size());
    std::unordered_map<ExprRef, ExprRef> Memo;
    for (ExprRef E : Q.Constraints) {
      // Keep the defining equalities verbatim: they carry the eliminated
      // variables into the model.
      uint64_t Value;
      bool Infeasible;
      ExprRef Out = E;
      if (!definedVar(E, Value, Infeasible))
        Out = substituteExpr(Ctx, E, Replacements, Memo);
      if (Out->isFalse())
        return SolverResult::Unsat;
      if (!Out->isTrue())
        Rewritten.Constraints.push_back(Out);
    }
    return Inner->checkSat(Rewritten, Model);
  }

private:
  std::unique_ptr<Solver> Inner;
};

//===----------------------------------------------------------------------===
// IndependenceSolver
//===----------------------------------------------------------------------===

/// Splits the constraint set into groups that share no variables and
/// solves each group separately. Mirrors KLEE's independent-constraint
/// optimization: a freshly forked state usually adds one small conjunct
/// whose group hits the cache even when the full path condition does not.
class IndependenceSolver : public Solver {
public:
  IndependenceSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  SYMMERGE_FORWARD_SESSIONS_TO_INNER()

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    ++solverStats().Queries;
    // Union-find over constraint indices, unified through shared vars.
    size_t N = Q.Constraints.size();
    std::vector<size_t> Parent(N);
    for (size_t I = 0; I < N; ++I)
      Parent[I] = I;
    auto Find = [&](size_t X) {
      while (Parent[X] != X) {
        Parent[X] = Parent[Parent[X]];
        X = Parent[X];
      }
      return X;
    };
    auto Union = [&](size_t A, size_t B) { Parent[Find(A)] = Find(B); };

    std::unordered_map<ExprRef, size_t> VarOwner;
    for (size_t I = 0; I < N; ++I) {
      ExprRef E = Q.Constraints[I];
      if (E->isFalse())
        return SolverResult::Unsat;
      for (ExprRef V : collectVars(E)) {
        auto [It, Inserted] = VarOwner.emplace(V, I);
        if (!Inserted)
          Union(I, It->second);
      }
    }

    // Group constraints by representative, preserving order.
    std::map<size_t, std::vector<ExprRef>> Groups;
    for (size_t I = 0; I < N; ++I) {
      ExprRef E = Q.Constraints[I];
      if (E->isTrue())
        continue;
      Groups[Find(I)].push_back(E);
    }

    bool SawUnknown = false;
    for (auto &[Rep, Constraints] : Groups) {
      VarAssignment GroupModel;
      SolverResult R = Inner->checkSat(Query(Constraints),
                                       Model ? &GroupModel : nullptr);
      if (R == SolverResult::Unsat)
        return SolverResult::Unsat;
      if (R == SolverResult::Unknown) {
        SawUnknown = true;
        continue;
      }
      if (Model) {
        for (auto &[Var, Value] : GroupModel.values())
          Model->set(Var, Value);
      }
    }
    return SawUnknown ? SolverResult::Unknown : SolverResult::Sat;
  }

private:
  std::unique_ptr<Solver> Inner;
};

//===----------------------------------------------------------------------===
// BruteForceSolver (test oracle)
//===----------------------------------------------------------------------===

class BruteForceSolver : public Solver {
public:
  explicit BruteForceSolver(ExprContext &Ctx) : Solver(Ctx) {}

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::unordered_set<ExprRef> Seen;
    std::vector<ExprRef> Vars;
    for (ExprRef E : Q.Constraints) {
      if (E->isFalse())
        return SolverResult::Unsat;
      collectVars(E, Vars, Seen);
    }
    unsigned TotalBits = 0;
    for (ExprRef V : Vars)
      TotalBits += V->width();
    assert(TotalBits <= 24 && "brute-force solver domain too large");

    uint64_t Count = 1ULL << TotalBits;
    for (uint64_t Bits = 0; Bits < Count; ++Bits) {
      VarAssignment A;
      uint64_t Cursor = Bits;
      for (ExprRef V : Vars) {
        A.set(V, ExprContext::maskToWidth(Cursor, V->width()));
        Cursor >>= V->width();
      }
      ExprEvaluator Eval(A);
      bool AllHold = true;
      for (ExprRef E : Q.Constraints) {
        if (!Eval.evaluateBool(E)) {
          AllHold = false;
          break;
        }
      }
      if (AllHold) {
        if (Model)
          *Model = A;
        return SolverResult::Sat;
      }
    }
    return SolverResult::Unsat;
  }
};

} // namespace

std::unique_ptr<SolverSession> Solver::openSession() {
  ++solverStats().SessionsOpened;
  return std::make_unique<QuerySession>(Ctx, *this);
}

std::unique_ptr<Solver> symmerge::createCoreSolver(ExprContext &Ctx,
                                                   CoreSolverOptions Opts) {
  return std::make_unique<CoreSolver>(Ctx, std::move(Opts));
}

std::unique_ptr<Solver> symmerge::createCoreSolver(ExprContext &Ctx,
                                                   uint64_t ConflictBudget,
                                                   bool IncrementalSessions,
                                                   bool VerdictCache,
                                                   bool GroupSessions) {
  CoreSolverOptions Opts;
  Opts.ConflictBudget = ConflictBudget;
  Opts.IncrementalSessions = IncrementalSessions;
  Opts.GroupSessions = GroupSessions;
  if (VerdictCache)
    Opts.Verdicts = createVerdictCache();
  return createCoreSolver(Ctx, std::move(Opts));
}

std::unique_ptr<Solver>
symmerge::createCoreSolver(ExprContext &Ctx, uint64_t ConflictBudget,
                           bool IncrementalSessions,
                           std::shared_ptr<SessionVerdictCache> Cache,
                           bool GroupSessions,
                           std::shared_ptr<ModelCache> Models) {
  CoreSolverOptions Opts;
  Opts.ConflictBudget = ConflictBudget;
  Opts.IncrementalSessions = IncrementalSessions;
  Opts.GroupSessions = GroupSessions;
  Opts.Verdicts = std::move(Cache);
  Opts.Models = std::move(Models);
  return createCoreSolver(Ctx, std::move(Opts));
}

std::unique_ptr<Solver>
symmerge::createCachingSolver(ExprContext &Ctx,
                              std::unique_ptr<Solver> Inner) {
  return std::make_unique<CachingSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver>
symmerge::createSimplifyingSolver(ExprContext &Ctx,
                                  std::unique_ptr<Solver> Inner) {
  return std::make_unique<SimplifyingSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver>
symmerge::createIndependenceSolver(ExprContext &Ctx,
                                   std::unique_ptr<Solver> Inner) {
  return std::make_unique<IndependenceSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver> symmerge::createBruteForceSolver(ExprContext &Ctx) {
  return std::make_unique<BruteForceSolver>(Ctx);
}

std::unique_ptr<Solver> symmerge::createDefaultSolver(ExprContext &Ctx,
                                                      uint64_t ConflictBudget) {
  CoreSolverOptions Opts;
  Opts.ConflictBudget = ConflictBudget;
  Opts.Verdicts = createVerdictCache();
  Opts.Models = createModelCache();
  Opts.Cores = createCoreCache();
  Opts.Poison = createPoisonCache();
  return createIndependenceSolver(
      Ctx, createSimplifyingSolver(
               Ctx, createCachingSolver(
                        Ctx, createCoreSolver(Ctx, std::move(Opts)))));
}
