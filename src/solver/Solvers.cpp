//===- Solvers.cpp - Solver layers: core, cache, independence, brute ------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"

#include "expr/ExprRewrite.h"
#include "expr/ExprUtil.h"
#include "solver/BitBlaster.h"
#include "solver/Sat.h"
#include "support/Hashing.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace symmerge;

Solver::~Solver() = default;

SolverQueryStats &symmerge::solverStats() {
  static SolverQueryStats Stats;
  return Stats;
}

bool Solver::mayBeTrue(const Query &Q, ExprRef E) {
  assert(E->width() == 1 && "feasibility check needs a boolean");
  if (E->isTrue())
    return true;
  if (E->isFalse())
    return false;
  // Unknown is treated as "may": the engine never prunes on a resource
  // limit, it only loses the ability to prove infeasibility.
  return checkSat(Q.withConstraint(E), nullptr) != SolverResult::Unsat;
}

bool Solver::mayBeFalse(const Query &Q, ExprRef E) {
  return mayBeTrue(Q, Ctx.mkNot(E));
}

bool Solver::getModel(const Query &Q, VarAssignment &Model) {
  return checkSat(Q, &Model) == SolverResult::Sat;
}

namespace {

//===----------------------------------------------------------------------===
// CoreSolver: bitblast + CDCL
//===----------------------------------------------------------------------===

class CoreSolver : public Solver {
public:
  CoreSolver(ExprContext &Ctx, uint64_t ConflictBudget)
      : Solver(Ctx), ConflictBudget(ConflictBudget) {}

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    ++solverStats().CoreQueries;
    Timer T;
    sat::SatSolver S;
    BitBlaster BB(S);
    for (ExprRef E : Q.Constraints) {
      if (E->isFalse()) {
        solverStats().CoreSolveSeconds += T.seconds();
        ++solverStats().UnsatResults;
        return SolverResult::Unsat;
      }
      if (E->isTrue())
        continue;
      BB.assertTrue(E);
    }
    bool IsSat = S.solve(ConflictBudget);
    solverStats().CoreSolveSeconds += T.seconds();
    if (!IsSat && S.budgetExceeded())
      return SolverResult::Unknown;
    if (!IsSat) {
      ++solverStats().UnsatResults;
      return SolverResult::Unsat;
    }
    ++solverStats().SatResults;
    if (Model) {
      std::unordered_set<ExprRef> Seen;
      std::vector<ExprRef> Vars;
      for (ExprRef E : Q.Constraints)
        collectVars(E, Vars, Seen);
      for (ExprRef V : Vars)
        Model->set(V, BB.modelValue(V));
    }
    return SolverResult::Sat;
  }

private:
  uint64_t ConflictBudget;
};

//===----------------------------------------------------------------------===
// CachingSolver
//===----------------------------------------------------------------------===

/// Caches results keyed by the sorted multiset of constraint node ids.
/// Because expressions are hash-consed, two structurally equal queries
/// always map to the same key.
class CachingSolver : public Solver {
public:
  CachingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::vector<uint64_t> Key;
    Key.reserve(Q.Constraints.size());
    for (ExprRef E : Q.Constraints)
      Key.push_back(E->id());
    std::sort(Key.begin(), Key.end());
    Key.erase(std::unique(Key.begin(), Key.end()), Key.end());

    uint64_t H = hashMix(Key.size());
    for (uint64_t Id : Key)
      H = hashCombine(H, Id);

    auto Range = Cache.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It) {
      if (It->second.Key != Key)
        continue;
      ++solverStats().CacheHits;
      if (Model && It->second.Result == SolverResult::Sat)
        *Model = It->second.Model;
      return It->second.Result;
    }

    VarAssignment Local;
    SolverResult R = Inner->checkSat(Q, &Local);
    if (R != SolverResult::Unknown)
      Cache.emplace(H, Entry{std::move(Key), R, Local});
    if (Model && R == SolverResult::Sat)
      *Model = Local;
    return R;
  }

private:
  struct Entry {
    std::vector<uint64_t> Key;
    SolverResult Result;
    VarAssignment Model;
  };
  std::unique_ptr<Solver> Inner;
  std::unordered_multimap<uint64_t, Entry> Cache;
};

//===----------------------------------------------------------------------===
// SimplifyingSolver
//===----------------------------------------------------------------------===

/// Substitutes `var == constant` equalities into the remaining
/// constraints (KLEE's ConstraintManager rewriting, done at the solver
/// boundary so engine state — and the positional path-condition prefixes
/// merging relies on — stays untouched).
class SimplifyingSolver : public Solver {
public:
  SimplifyingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  /// If \p E pins a variable to a constant — `var == k`, possibly through
  /// zero-extensions (`zext(var) == k`, the shape branch conditions on
  /// array cells take) — returns the variable; null otherwise. \p Value
  /// receives the constant at the variable's width. \p Infeasible is set
  /// when the constant cannot fit, i.e. the equality itself is false.
  ExprRef definedVar(ExprRef E, uint64_t &Value, bool &Infeasible) const {
    Infeasible = false;
    if (E->kind() != ExprKind::Eq || !E->operand(1)->isConstant())
      return nullptr;
    ExprRef Base = E->operand(0);
    while (Base->kind() == ExprKind::ZExt)
      Base = Base->operand(0);
    if (Base->kind() != ExprKind::Var)
      return nullptr;
    uint64_t K = E->operand(1)->constantValue();
    if (ExprContext::maskToWidth(K, Base->width()) != K) {
      Infeasible = true; // zext(var) can never reach this value.
      return nullptr;
    }
    Value = K;
    return Base;
  }

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::unordered_map<ExprRef, ExprRef> Replacements;
    for (ExprRef E : Q.Constraints) {
      uint64_t Value;
      bool Infeasible;
      ExprRef Var = definedVar(E, Value, Infeasible);
      if (Infeasible)
        return SolverResult::Unsat;
      if (Var)
        Replacements.emplace(Var, Ctx.mkConst(Value, Var->width()));
    }
    if (Replacements.empty())
      return Inner->checkSat(Q, Model);

    Query Rewritten;
    Rewritten.Constraints.reserve(Q.Constraints.size());
    std::unordered_map<ExprRef, ExprRef> Memo;
    for (ExprRef E : Q.Constraints) {
      // Keep the defining equalities verbatim: they carry the eliminated
      // variables into the model.
      uint64_t Value;
      bool Infeasible;
      ExprRef Out = E;
      if (!definedVar(E, Value, Infeasible))
        Out = substituteExpr(Ctx, E, Replacements, Memo);
      if (Out->isFalse())
        return SolverResult::Unsat;
      if (!Out->isTrue())
        Rewritten.Constraints.push_back(Out);
    }
    return Inner->checkSat(Rewritten, Model);
  }

private:
  std::unique_ptr<Solver> Inner;
};

//===----------------------------------------------------------------------===
// IndependenceSolver
//===----------------------------------------------------------------------===

/// Splits the constraint set into groups that share no variables and
/// solves each group separately. Mirrors KLEE's independent-constraint
/// optimization: a freshly forked state usually adds one small conjunct
/// whose group hits the cache even when the full path condition does not.
class IndependenceSolver : public Solver {
public:
  IndependenceSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner)
      : Solver(Ctx), Inner(std::move(Inner)) {}

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    ++solverStats().Queries;
    // Union-find over constraint indices, unified through shared vars.
    size_t N = Q.Constraints.size();
    std::vector<size_t> Parent(N);
    for (size_t I = 0; I < N; ++I)
      Parent[I] = I;
    auto Find = [&](size_t X) {
      while (Parent[X] != X) {
        Parent[X] = Parent[Parent[X]];
        X = Parent[X];
      }
      return X;
    };
    auto Union = [&](size_t A, size_t B) { Parent[Find(A)] = Find(B); };

    std::unordered_map<ExprRef, size_t> VarOwner;
    for (size_t I = 0; I < N; ++I) {
      ExprRef E = Q.Constraints[I];
      if (E->isFalse())
        return SolverResult::Unsat;
      for (ExprRef V : collectVars(E)) {
        auto [It, Inserted] = VarOwner.emplace(V, I);
        if (!Inserted)
          Union(I, It->second);
      }
    }

    // Group constraints by representative, preserving order.
    std::map<size_t, std::vector<ExprRef>> Groups;
    for (size_t I = 0; I < N; ++I) {
      ExprRef E = Q.Constraints[I];
      if (E->isTrue())
        continue;
      Groups[Find(I)].push_back(E);
    }

    bool SawUnknown = false;
    for (auto &[Rep, Constraints] : Groups) {
      VarAssignment GroupModel;
      SolverResult R = Inner->checkSat(Query(Constraints),
                                       Model ? &GroupModel : nullptr);
      if (R == SolverResult::Unsat)
        return SolverResult::Unsat;
      if (R == SolverResult::Unknown) {
        SawUnknown = true;
        continue;
      }
      if (Model) {
        for (auto &[Var, Value] : GroupModel.values())
          Model->set(Var, Value);
      }
    }
    return SawUnknown ? SolverResult::Unknown : SolverResult::Sat;
  }

private:
  std::unique_ptr<Solver> Inner;
};

//===----------------------------------------------------------------------===
// BruteForceSolver (test oracle)
//===----------------------------------------------------------------------===

class BruteForceSolver : public Solver {
public:
  explicit BruteForceSolver(ExprContext &Ctx) : Solver(Ctx) {}

  SolverResult checkSat(const Query &Q, VarAssignment *Model) override {
    std::unordered_set<ExprRef> Seen;
    std::vector<ExprRef> Vars;
    for (ExprRef E : Q.Constraints) {
      if (E->isFalse())
        return SolverResult::Unsat;
      collectVars(E, Vars, Seen);
    }
    unsigned TotalBits = 0;
    for (ExprRef V : Vars)
      TotalBits += V->width();
    assert(TotalBits <= 24 && "brute-force solver domain too large");

    uint64_t Count = 1ULL << TotalBits;
    for (uint64_t Bits = 0; Bits < Count; ++Bits) {
      VarAssignment A;
      uint64_t Cursor = Bits;
      for (ExprRef V : Vars) {
        A.set(V, ExprContext::maskToWidth(Cursor, V->width()));
        Cursor >>= V->width();
      }
      ExprEvaluator Eval(A);
      bool AllHold = true;
      for (ExprRef E : Q.Constraints) {
        if (!Eval.evaluateBool(E)) {
          AllHold = false;
          break;
        }
      }
      if (AllHold) {
        if (Model)
          *Model = A;
        return SolverResult::Sat;
      }
    }
    return SolverResult::Unsat;
  }
};

} // namespace

std::unique_ptr<Solver> symmerge::createCoreSolver(ExprContext &Ctx,
                                                   uint64_t ConflictBudget) {
  return std::make_unique<CoreSolver>(Ctx, ConflictBudget);
}

std::unique_ptr<Solver>
symmerge::createCachingSolver(ExprContext &Ctx,
                              std::unique_ptr<Solver> Inner) {
  return std::make_unique<CachingSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver>
symmerge::createSimplifyingSolver(ExprContext &Ctx,
                                  std::unique_ptr<Solver> Inner) {
  return std::make_unique<SimplifyingSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver>
symmerge::createIndependenceSolver(ExprContext &Ctx,
                                   std::unique_ptr<Solver> Inner) {
  return std::make_unique<IndependenceSolver>(Ctx, std::move(Inner));
}

std::unique_ptr<Solver> symmerge::createBruteForceSolver(ExprContext &Ctx) {
  return std::make_unique<BruteForceSolver>(Ctx);
}

std::unique_ptr<Solver> symmerge::createDefaultSolver(ExprContext &Ctx,
                                                      uint64_t ConflictBudget) {
  return createIndependenceSolver(
      Ctx, createSimplifyingSolver(
               Ctx, createCachingSolver(
                        Ctx, createCoreSolver(Ctx, ConflictBudget))));
}
