//===- BitBlaster.h - Expression to CNF translation -------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates bitvector expressions into CNF over a SatSolver instance via
/// Tseitin encoding. Each expression node is lowered once (DAG sharing is
/// inherited from the hash-consed expression context). Division uses a
/// restoring-division circuit whose zero-divisor behaviour matches the
/// SMT-LIB semantics implemented by ExprContext's constant folder, so the
/// solver, the evaluator, and the folder always agree.
///
/// The ExprRef -> literal memo table persists for the blaster's lifetime,
/// so when one BitBlaster is kept alive across successive queries of an
/// incremental solver session, a constraint (or any subterm) shared by
/// those queries is Tseitin-encoded exactly once; stats() counts the hits
/// and misses, which the solver layer surfaces as encoding-cache counters.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_BITBLASTER_H
#define SYMMERGE_SOLVER_BITBLASTER_H

#include "expr/Expr.h"
#include "solver/Sat.h"

#include <unordered_map>
#include <vector>

namespace symmerge {

/// Encoding-cache counters of one BitBlaster.
struct BitBlastStats {
  uint64_t NodesLowered = 0; ///< Expression nodes Tseitin-encoded.
  uint64_t CacheHits = 0;    ///< Nodes served from the persistent memo.
};

/// Lowers expressions into a SatSolver. One BitBlaster per SAT instance.
class BitBlaster {
public:
  explicit BitBlaster(sat::SatSolver &S);

  /// Asserts that the width-1 expression \p E is true.
  void assertTrue(ExprRef E);

  /// Returns a literal equivalent to the width-1 expression \p E without
  /// asserting it — the handle incremental sessions pass to
  /// SatSolver::solveAssuming.
  sat::Lit literalFor(ExprRef E);

  /// Returns the SAT variables backing symbolic variable \p V (LSB first),
  /// or nullptr if \p V never occurred in an asserted expression.
  const std::vector<sat::Lit> *varBits(ExprRef V) const;

  /// Reads back the value of symbolic variable \p V from the SAT model.
  /// Unconstrained bits read as zero.
  uint64_t modelValue(ExprRef V) const;

  const BitBlastStats &stats() const { return TheStats; }

  /// Approximate byte footprint of the persistent encoding caches (the
  /// ExprRef -> bits memo and the variable map). Sessions fold this into
  /// their SessionHealth::MemoryBytes so eviction watermarks account for
  /// the encoding state a sub-session keeps alive, not just its clauses.
  size_t footprintBytes() const;

private:
  using Bits = std::vector<sat::Lit>;

  /// Returns the bit representation of \p E, lowering it on first use.
  /// Returns by value: recursive lowering may rehash the memo table, so
  /// references into it must not be held across calls.
  Bits lower(ExprRef E);

  // Gate constructors; inputs/outputs are literals. Constant literals are
  // folded eagerly so no clause is emitted for them.
  sat::Lit litConst(bool B) const;
  bool isConstLit(sat::Lit L, bool &Value) const;
  sat::Lit mkAnd(sat::Lit A, sat::Lit B);
  sat::Lit mkOr(sat::Lit A, sat::Lit B);
  sat::Lit mkXor(sat::Lit A, sat::Lit B);
  sat::Lit mkIte(sat::Lit C, sat::Lit T, sat::Lit F);
  sat::Lit mkAndReduce(const Bits &Bs);

  // Word-level circuits.
  Bits mkAdder(const Bits &A, const Bits &B, sat::Lit CarryIn);
  Bits mkNegate(const Bits &A);
  sat::Lit mkUlt(const Bits &A, const Bits &B);
  sat::Lit mkSlt(const Bits &A, const Bits &B);
  sat::Lit mkEqWord(const Bits &A, const Bits &B);
  Bits mkMul(const Bits &A, const Bits &B);
  void mkUDivURem(const Bits &A, const Bits &B, Bits &Quot, Bits &Rem);
  Bits mkShift(const Bits &A, const Bits &Amount, ExprKind Kind);
  Bits mkMux(sat::Lit C, const Bits &T, const Bits &F);

  sat::SatSolver &S;
  sat::Lit TrueLit;
  std::unordered_map<ExprRef, Bits> Lowered;
  std::unordered_map<ExprRef, Bits> VarMap;
  BitBlastStats TheStats;
};

} // namespace symmerge

#endif // SYMMERGE_SOLVER_BITBLASTER_H
