//===- ModelCache.cpp - Shared counterexample (model) cache ------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/ModelCache.h"

#include "solver/Solver.h"

#include <algorithm>

using namespace symmerge;

ModelCache::ModelCache(const ModelCacheOptions &Opts)
    : ProbeLimit(std::max(1u, Opts.ProbeLimit)),
      SignatureFilter(Opts.SignatureFilter) {
  size_t NumShards = 1;
  while (NumShards < std::max(1u, Opts.Shards))
    NumShards *= 2;
  // Same shard-collapse rule as the verdict cache: a tiny MaxEntries
  // spread over many shards would round each slice up and inflate the
  // real bound.
  while (Opts.MaxEntries != 0 && NumShards > 1 &&
         Opts.MaxEntries / NumShards < 4)
    NumShards /= 2;
  Shards = std::vector<Shard>(NumShards);
  MaxPerShard = Opts.MaxEntries == 0
                    ? 0
                    : std::max<size_t>(1, Opts.MaxEntries / NumShards);
}

bool ModelCache::probe(const std::vector<ExprRef> &Constraints,
                       const std::vector<ExprRef> &Vars,
                       VarAssignment &Model) {
  uint64_t VarsSig = 0;
  for (ExprRef V : Vars)
    VarsSig |= footprintBit(V->id());
  return probe(Constraints, Vars, VarsSig, Model);
}

bool ModelCache::probe(const std::vector<ExprRef> &Constraints,
                       const std::vector<ExprRef> &Vars, uint64_t VarsSig,
                       VarAssignment &Model) {
  // Degenerate probes (nothing to satisfy / no footprint to index by)
  // are not counted: only real candidate searches are hits or misses.
  if (Constraints.empty() || Vars.empty())
    return false;
  SolverQueryStats &Stats = solverStats();
  // Stage 1: gather a wider pool than we are willing to evaluate (the
  // gather is cheap — pointer copies under the shard locks; evaluation
  // is the expensive part), newest-first per variable list and
  // deduplicated across lists.
  const size_t GatherLimit = static_cast<size_t>(ProbeLimit) * 4;
  struct Candidate {
    std::shared_ptr<const Entry> E;
    uint64_t VarId;   ///< List drawn from (for the recency touch).
    uint32_t Hits;    ///< Validated-hit count at gather time.
    uint32_t Overlap; ///< Probe-footprint variables the model assigns.
  };
  std::vector<Candidate> Candidates;
  Candidates.reserve(GatherLimit);
  for (ExprRef V : Vars) {
    if (Candidates.size() >= GatherLimit)
      break;
    uint64_t VarId = V->id();
    Shard &S = shardFor(VarId);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Index.find(VarId);
    if (It == S.Index.end())
      continue;
    const std::vector<Ref> &List = It->second.Refs;
    for (size_t I = List.size(); I-- > 0;) {
      if (Candidates.size() >= GatherLimit)
        break;
      // Coverage pre-filter: a probe-footprint bit the model's signature
      // lacks proves the model leaves at least one probe variable
      // unassigned — skip it before the dedup scan, the ranking, and the
      // evaluation it could only pass through the zero default.
      if (SignatureFilter && (VarsSig & ~List[I].VarSig) != 0) {
        ++Stats.ModelCacheSigSkips;
        continue;
      }
      const std::shared_ptr<const Entry> &E = List[I].E;
      bool SeenAlready = false;
      for (const Candidate &C : Candidates)
        if (C.E == E || C.E->Hash == E->Hash) {
          SeenAlready = true;
          break;
        }
      if (!SeenAlready)
        Candidates.push_back({E, VarId, 0, 0});
    }
  }

  // Stage 2: rank by (validated hit count, probe-footprint overlap),
  // gather order — i.e. recency — breaking ties, and evaluate only the
  // top ProbeLimit. A model that has proven itself repeatedly, or that
  // covers more of this probe's variables, is likelier to validate than
  // one that is merely newer — so churn of single-use models can no
  // longer push the proven witness out of the probe budget.
  for (Candidate &C : Candidates) {
    C.Hits = C.E->Hits.load(std::memory_order_relaxed);
    uint32_t O = 0;
    for (ExprRef V : Vars)
      O += C.E->Model.contains(V);
    C.Overlap = O;
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const Candidate &A, const Candidate &B) {
                     if (A.Hits != B.Hits)
                       return A.Hits > B.Hits;
                     return A.Overlap > B.Overlap;
                   });
  if (Candidates.size() > ProbeLimit)
    Candidates.resize(ProbeLimit);

  for (const auto &[E, VarId, Hits, Overlap] : Candidates) {
    ExprEvaluator Eval(E->Model);
    bool AllHold = true;
    for (ExprRef C : Constraints) {
      if (!Eval.evaluateBool(C)) {
        AllHold = false;
        break;
      }
    }
    if (!AllHold)
      continue;
    // Touch the hit in the list we drew it from: refresh its generation
    // stamp (so the LRU keeps productive models resident) and move it to
    // the back, where probes look first — probing is most-recently-USED
    // first, not merely most-recently-inserted first, so a hot model
    // survives both eviction and probe-budget displacement by churn.
    Shard &S = shardFor(VarId);
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Index.find(VarId);
      if (It != S.Index.end()) {
        std::vector<Ref> &List = It->second.Refs;
        for (size_t I = 0; I < List.size(); ++I)
          if (List[I].E == E) {
            List[I].Generation = ++S.Generation;
            std::swap(List[I], List.back());
            break;
          }
      }
    }
    ++Stats.ModelCacheHits;
    E->Hits.fetch_add(1, std::memory_order_relaxed);
    Model = E->Model;
    return true;
  }
  ++Stats.ModelCacheMisses;
  // Outside every shard lock: let the remote tier probe asynchronously
  // for a witness another process already solved (installed for future
  // probes; this check bit-blasts locally either way).
  if (Remote)
    Remote->onModelMiss(Vars);
  return false;
}

void ModelCache::insert(const VarAssignment &Model) {
  if (Model.values().empty())
    return;
  // Deterministic footprint order + a content hash for cheap dedup.
  std::vector<std::pair<uint64_t, uint64_t>> Items;
  Items.reserve(Model.values().size());
  for (const auto &[Var, Val] : Model.values())
    Items.push_back({Var->id(), Val});
  std::sort(Items.begin(), Items.end());
  uint64_t Hash = hashMix(Items.size());
  uint64_t VarSig = 0;
  for (const auto &[Id, Val] : Items) {
    Hash = hashCombine(Hash, Id);
    Hash = hashCombine(Hash, Val);
    VarSig |= footprintBit(Id);
  }

  // Built in place: Entry's atomic hit counter is neither copyable nor
  // movable, so no aggregate-then-move.
  auto Fresh = std::make_shared<Entry>();
  Fresh->Model = Model;
  Fresh->Hash = Hash;
  Fresh->VarSig = VarSig;
  std::shared_ptr<const Entry> E = std::move(Fresh);
  uint64_t Evicted = 0;
  for (const auto &[VarId, Val] : Items) {
    (void)Val;
    Shard &S = shardFor(VarId);
    std::lock_guard<std::mutex> Lock(S.M);
    VarList &L = S.Index[VarId];
    // Exact per-list dedup via the content-hash set: a model re-solved
    // because the probe budget happened to miss its resident copy must
    // not accumulate clones (they would crowd distinct witnesses out of
    // the shard's capacity). The republication proves the model hot, so
    // refresh the resident copy's recency instead — making it findable
    // by the next probe.
    if (!L.Hashes.insert(Hash).second) {
      for (size_t I = L.Refs.size(); I-- > 0;)
        if (L.Refs[I].E->Hash == Hash) {
          L.Refs[I].Generation = ++S.Generation;
          std::swap(L.Refs[I], L.Refs.back());
          break;
        }
      continue;
    }
    L.Refs.push_back(Ref{E, ++S.Generation, VarSig});
    ++S.RefCount;
    if (MaxPerShard != 0 && S.RefCount > MaxPerShard)
      Evicted += evictOldHalf(S);
  }
  if (Evicted) {
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    solverStats().ModelCacheEvictions += Evicted;
  }
  if (Remote)
    Remote->onModelInsert(Model);
}

uint64_t ModelCache::evictOldHalf(Shard &S) {
  std::vector<uint64_t> Stamps;
  Stamps.reserve(S.RefCount);
  for (const auto &[VarId, List] : S.Index)
    for (const Ref &R : List.Refs)
      Stamps.push_back(R.Generation);
  if (Stamps.empty())
    return 0;
  auto Mid = Stamps.begin() + Stamps.size() / 2;
  std::nth_element(Stamps.begin(), Mid, Stamps.end());
  uint64_t Cutoff = *Mid;
  uint64_t Removed = 0;
  for (auto It = S.Index.begin(); It != S.Index.end();) {
    VarList &List = It->second;
    size_t Out = 0;
    for (size_t I = 0; I < List.Refs.size(); ++I) {
      if (List.Refs[I].Generation <= Cutoff) {
        List.Hashes.erase(List.Refs[I].E->Hash);
        ++Removed;
        continue;
      }
      List.Refs[Out++] = std::move(List.Refs[I]);
    }
    List.Refs.resize(Out);
    It = List.Refs.empty() ? S.Index.erase(It) : std::next(It);
  }
  S.RefCount -= Removed;
  return Removed;
}

size_t ModelCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.RefCount;
  }
  return N;
}

uint64_t ModelCache::evictions() const {
  return Evictions.load(std::memory_order_relaxed);
}

std::shared_ptr<ModelCache>
symmerge::createModelCache(const ModelCacheOptions &Opts) {
  return std::make_shared<ModelCache>(Opts);
}
