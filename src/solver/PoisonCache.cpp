//===- PoisonCache.cpp - Remembered solver blow-ups --------------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/PoisonCache.h"

#include "solver/Solver.h"

#include <algorithm>

using namespace symmerge;

PoisonCache::PoisonCache(const PoisonCacheOptions &Opts) {
  size_t NumShards = 1;
  while (NumShards < std::max(1u, Opts.Shards))
    NumShards *= 2;
  // Same shard-collapse rule as the verdict cache: a tiny MaxEntries
  // spread over many shards would round each slice up and inflate the
  // real bound.
  while (Opts.MaxEntries != 0 && NumShards > 1 &&
         Opts.MaxEntries / NumShards < 4)
    NumShards /= 2;
  Shards = std::vector<Shard>(NumShards);
  MaxPerShard = Opts.MaxEntries == 0
                    ? 0
                    : std::max<size_t>(1, Opts.MaxEntries / NumShards);
}

bool PoisonCache::contains(const std::vector<uint64_t> &Key, uint64_t Hash) {
  Shard &S = shardFor(Hash);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto Range = S.Map.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It) {
      if (It->second.Key != Key)
        continue;
      It->second.Generation = ++S.Generation;
      ++solverStats().PoisonedQueries;
      return true;
    }
  }
  return false;
}

void PoisonCache::insert(std::vector<uint64_t> Key, uint64_t Hash) {
  Shard &S = shardFor(Hash);
  uint64_t Evicted = 0;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    // Two workers can race blow-up -> insert on the same key; keep the
    // map duplicate-free (a refresh is all the second insert means).
    auto Range = S.Map.equal_range(Hash);
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second.Key == Key) {
        It->second.Generation = ++S.Generation;
        return;
      }
    S.Map.emplace(Hash, Entry{std::move(Key), ++S.Generation});
    if (MaxPerShard != 0 && S.Map.size() > MaxPerShard)
      Evicted = evictOldHalf(S);
  }
  ++solverStats().PoisonedInserts;
  if (Evicted) {
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    solverStats().PoisonCacheEvictions += Evicted;
  }
}

uint64_t PoisonCache::evictOldHalf(Shard &S) {
  std::vector<uint64_t> Stamps;
  Stamps.reserve(S.Map.size());
  for (const auto &[H, E] : S.Map)
    Stamps.push_back(E.Generation);
  auto Mid = Stamps.begin() + Stamps.size() / 2;
  std::nth_element(Stamps.begin(), Mid, Stamps.end());
  uint64_t Cutoff = *Mid;
  uint64_t Removed = 0;
  for (auto It = S.Map.begin(); It != S.Map.end();) {
    if (It->second.Generation <= Cutoff) {
      It = S.Map.erase(It);
      ++Removed;
    } else {
      ++It;
    }
  }
  return Removed;
}

size_t PoisonCache::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Map.size();
  }
  return N;
}

uint64_t PoisonCache::evictions() const {
  return Evictions.load(std::memory_order_relaxed);
}

std::shared_ptr<PoisonCache>
symmerge::createPoisonCache(const PoisonCacheOptions &Opts) {
  return std::make_shared<PoisonCache>(Opts);
}
