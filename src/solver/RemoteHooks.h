//===- RemoteHooks.h - Remote cache-tier hook interface ---------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the in-process solver caches and the distributed
/// remote cache tier (src/dist/RemoteCache.*). Each shared cache
/// (SessionVerdictCache, ModelCache, CoreCache) optionally carries a
/// RemoteCacheHooks pointer and notifies it on local misses and on
/// first-time local inserts/publishes — always OUTSIDE the cache's
/// shard locks, so an implementation may take its own locks freely.
///
/// The contract is strictly advisory: hooks never answer the current
/// query. A miss hook lets the remote tier probe asynchronously and
/// install the answer into the local cache for FUTURE queries (local
/// miss -> remote probe -> local install); the in-flight check proceeds
/// to solve locally regardless. An insert hook lets warm state earned
/// here serve other processes. Implementations must suppress the
/// insert/publish hooks for installs they themselves perform, or a
/// remote answer would bounce back as a fresh publication forever.
///
/// Keys use the caches' native currencies — normalized node-id vectors
/// for verdicts and cores, ExprRef variable sets and VarAssignments for
/// models — so a hook costs nothing beyond what the cache already
/// computed.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_REMOTEHOOKS_H
#define SYMMERGE_SOLVER_REMOTEHOOKS_H

#include "expr/ExprEval.h"
#include "solver/Solver.h"

#include <cstdint>
#include <vector>

namespace symmerge {

class RemoteCacheHooks {
public:
  virtual ~RemoteCacheHooks() = default;

  /// A verdict lookup missed locally. \p Key is the normalized (sorted,
  /// deduplicated) constraint-id vector, \p Hash its precomputed hash.
  virtual void onVerdictMiss(const std::vector<uint64_t> &Key,
                             uint64_t Hash) = 0;
  /// A Sat/Unsat verdict was inserted locally for the first time.
  virtual void onVerdictInsert(const std::vector<uint64_t> &Key,
                               uint64_t Hash, SolverResult R) = 0;

  /// A model probe found no validating candidate. \p Vars is the probe's
  /// distinct variable footprint.
  virtual void onModelMiss(const std::vector<ExprRef> &Vars) = 0;
  /// A satisfying assignment was published locally.
  virtual void onModelInsert(const VarAssignment &Model) = 0;

  /// A core probe found no subsuming cached core. \p Key is the
  /// normalized sliced-constraint-id vector (verdict-key normalization).
  virtual void onCoreMiss(const std::vector<uint64_t> &Key) = 0;
  /// A minimized, verified UNSAT core was published locally. \p Ids is
  /// the core's sorted, deduplicated constraint-id vector.
  virtual void onCorePublish(const std::vector<uint64_t> &Ids) = 0;
};

} // namespace symmerge

#endif // SYMMERGE_SOLVER_REMOTEHOOKS_H
