//===- GroupedSession.h - Per-group native solver sub-sessions --*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solve-level independence slicing for native solver sessions. PR 2
/// sliced the *verdict-cache key* down to the constraint group
/// variable-reachable from the assumptions; a cache miss still bit-blasted
/// and solved the full path condition. The grouped session pushes the
/// same independence structure into the solve itself: an incremental
/// union-find partitions the asserted constraints into variable-connected
/// groups, and each group lazily owns a private sub-session — its own
/// SatSolver instance plus its own persistent BitBlaster encoding — so a
/// check encodes and solves only the group(s) its assumptions can reach.
///
///  - assert_ unions the constraint's variables (recorded in the current
///    scope, so pop() splits the groups again);
///  - checkSatAssuming routes to the sub-sessions reachable from the
///    assumptions, merging sub-instances only when a constraint or an
///    assumption actually bridges two groups (the smaller encoding is
///    migrated into the larger);
///  - pops retire only the touched groups' scope guards — a group whose
///    scope asserted nothing into it accumulates no dead-guard garbage;
///  - under SessionOptions::FeasiblePrefix the unreachable groups are
///    skipped outright (they are satisfiable by the engine's promise);
///    without the promise they are re-verified only when dirty, and a
///    known-satisfiable verdict is reused (pops only relax a group, so
///    satisfiability survives them);
///  - models compose per group: each sub-session contributes the values
///    of the variables it owns.
///
/// This is KLEE's independent-constraint optimization (mirrored one-shot
/// in IndependenceSolver) moved inside the incremental session, in the
/// spirit of "Divide, Conquer and Verify": many small SAT instances beat
/// one monolithic instance whenever the workload's constraint graph is
/// disconnected (echo/wc-style index and length groups).
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_GROUPEDSESSION_H
#define SYMMERGE_SOLVER_GROUPEDSESSION_H

#include "solver/Solver.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace symmerge {

/// Union-find over opaque uint64 keys with scope-based rollback: every
/// node insertion and every union is recorded in the scope that performed
/// it, and pop() undoes them in reverse order — the group structure after
/// a pop is exactly what it was before the matching push. Union by size,
/// no path compression (compression would be lost on rollback anyway and
/// its undo log would dwarf the walk it saves at session-sized inputs).
class ScopedUnionFind {
public:
  /// Opens a scope; subsequent add()/unite() effects are undone by pop().
  void push() { ScopeMarks.push_back(Log.size()); }

  /// Undoes every add()/unite() since the matching push().
  void pop();

  /// Ensures \p Key has a node (created in the current scope if new) and
  /// returns its index. Indices are stable until the creating scope pops.
  int add(uint64_t Key);

  /// Node index of \p Key, or -1 if never added (or popped away).
  int lookup(uint64_t Key) const {
    auto It = Index.find(Key);
    return It == Index.end() ? -1 : It->second;
  }

  /// Representative node index of the group containing node \p N.
  int root(int N) const {
    while (Parent[N] != N)
      N = Parent[N];
    return N;
  }

  /// Joins the groups of nodes \p A and \p B. Returns true when two
  /// distinct groups merged (recorded for rollback), false if already one.
  bool unite(int A, int B);

  /// Number of live nodes.
  size_t size() const { return Parent.size(); }

  /// Number of distinct groups among the live nodes.
  size_t groupCount() const;

  /// Live scope depth (number of unmatched pushes).
  size_t depth() const { return ScopeMarks.size(); }

private:
  struct UndoEntry {
    int Child;    ///< Root that was attached under another (-1: node add).
    uint64_t Key; ///< For node adds: the key to drop from the index.
  };

  std::unordered_map<uint64_t, int> Index;
  std::vector<int> Parent;
  std::vector<int> GroupSize;
  std::vector<UndoEntry> Log;
  std::vector<size_t> ScopeMarks;
};

/// Construction parameters of a native core session — shared verbatim by
/// the grouped session here and the monolithic IncrementalCoreSession in
/// Solvers.cpp, so the two implementations can never drift apart on what
/// a session is configured with.
struct GroupedSessionConfig {
  uint64_t ConflictBudget = 0;
  /// Per-SAT-call wall-clock bound in seconds (0 = unlimited). Blown
  /// budgets (conflict or wall) return Unknown and poison the query key.
  double WallBudgetSeconds = 0;
  /// Poisons a query whose solve grew the SAT clause database(s) by more
  /// than this many bytes (0 = unlimited); the exact verdict is still
  /// returned — only re-entry is fenced.
  uint64_t PoisonMemoryDeltaBytes = 0;
  bool Tracked = true; ///< False when serving a one-shot checkSat shim.
  /// SessionOptions::FeasiblePrefix: the caller promises the asserted
  /// conjunction stays satisfiable, letting checks skip unreachable
  /// groups entirely (and slicing verdict-cache keys, as before).
  bool FeasiblePrefix = false;
  std::shared_ptr<SessionVerdictCache> Cache; ///< Null when disabled.
  /// Shared counterexample cache (solver/ModelCache.h): probed on the
  /// sliced constraint set before a verdict-cache miss materializes
  /// anything, and fed by every successful solve — each solved group
  /// publishes its per-group model, and composed full models publish
  /// their union. Null disables model reuse.
  std::shared_ptr<ModelCache> Models;
  /// UNSAT-core subsumption cache (solver/CoreCache.h): probed on the
  /// sliced constraint set after verdict and model misses — a cached
  /// core that is a subset of the set proves UNSAT with zero SAT calls —
  /// and fed by every UNSAT solve. Null disables refutation reuse.
  std::shared_ptr<CoreCache> Cores;
  /// Poisoned-key set (solver/PoisonCache.h): queries whose earlier
  /// solve blew a budget are refused with Unknown before any SAT work.
  /// Null disables the fence (budgets then only bound the fresh solve).
  std::shared_ptr<PoisonCache> Poison;
};

/// Opens a grouped native session (per-group sub-instances). The
/// monolithic baseline remains IncrementalCoreSession in Solvers.cpp,
/// selected by createCoreSolver(..., GroupSessions=false).
std::unique_ptr<SolverSession>
createGroupedCoreSession(ExprContext &Ctx, GroupedSessionConfig Config);

} // namespace symmerge

#endif // SYMMERGE_SOLVER_GROUPEDSESSION_H
