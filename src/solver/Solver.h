//===- Solver.h - Constraint solver interface -------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface used by the symbolic execution engine. A Query is a
/// conjunction of width-1 constraints (the path condition). Solvers are
/// stacked in layers, mirroring KLEE's architecture:
///
///   IndependenceSolver -> CachingSolver -> CoreSolver (bitblast + CDCL)
///
/// The engine's `follow` feasibility checks (Algorithm 1) and test-case
/// generation all go through this interface, and the per-query counters
/// here are the measured quantity that QCE estimates statically.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_SOLVER_H
#define SYMMERGE_SOLVER_SOLVER_H

#include "expr/ExprContext.h"
#include "expr/ExprEval.h"

#include <memory>
#include <vector>

namespace symmerge {

/// A satisfiability query: the conjunction of `Constraints`.
struct Query {
  std::vector<ExprRef> Constraints;

  Query() = default;
  explicit Query(std::vector<ExprRef> Cs) : Constraints(std::move(Cs)) {}

  /// Returns this query extended with one more conjunct.
  Query withConstraint(ExprRef E) const {
    Query Q(*this);
    Q.Constraints.push_back(E);
    return Q;
  }
};

enum class SolverResult {
  Sat,
  Unsat,
  Unknown, ///< Resource limit hit; the engine treats this conservatively.
};

/// Aggregate counters across the whole solver stack.
struct SolverQueryStats {
  uint64_t Queries = 0;        ///< checkSat calls at the top layer.
  uint64_t CoreQueries = 0;    ///< Queries that reached the SAT core.
  uint64_t CacheHits = 0;
  uint64_t SatResults = 0;
  uint64_t UnsatResults = 0;
  double CoreSolveSeconds = 0; ///< Wall time spent inside the SAT core.
};

/// Abstract solver. Implementations must be deterministic.
class Solver {
public:
  explicit Solver(ExprContext &Ctx) : Ctx(Ctx) {}
  virtual ~Solver();

  /// Decides the conjunction of \p Q. On Sat, fills \p Model (if non-null)
  /// with an assignment of every variable occurring in the query.
  virtual SolverResult checkSat(const Query &Q, VarAssignment *Model) = 0;

  /// True if `Q && E` is satisfiable (Unknown counts as true, keeping the
  /// engine sound-for-exploration: it never prunes on an Unknown).
  bool mayBeTrue(const Query &Q, ExprRef E);
  /// True if `Q && !E` is satisfiable.
  bool mayBeFalse(const Query &Q, ExprRef E);
  /// True if E holds on every solution of Q.
  bool mustBeTrue(const Query &Q, ExprRef E) { return !mayBeFalse(Q, E); }
  /// True if E is false on every solution of Q.
  bool mustBeFalse(const Query &Q, ExprRef E) { return !mayBeTrue(Q, E); }

  /// Produces a test-case assignment for a feasible path condition.
  /// Returns false if the query is unsatisfiable (or Unknown).
  bool getModel(const Query &Q, VarAssignment &Model);

  ExprContext &context() { return Ctx; }

protected:
  ExprContext &Ctx;
};

/// Bitblasting solver: Tseitin-encodes the query and runs the CDCL core.
/// \p ConflictBudget bounds each SAT call (0 = unlimited).
std::unique_ptr<Solver> createCoreSolver(ExprContext &Ctx,
                                         uint64_t ConflictBudget = 0);

/// Wraps \p Inner with a query-result cache.
std::unique_ptr<Solver> createCachingSolver(ExprContext &Ctx,
                                            std::unique_ptr<Solver> Inner);

/// Wraps \p Inner with KLEE-style equality substitution: constraints of
/// the form `var == constant` are substituted into the other constraints
/// before dispatch, concretizing them (and often refuting the query
/// without reaching the SAT core).
std::unique_ptr<Solver>
createSimplifyingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner);

/// Wraps \p Inner with constraint-independence slicing: constraints that
/// share no variables (transitively) with the rest are solved separately.
std::unique_ptr<Solver> createIndependenceSolver(ExprContext &Ctx,
                                                 std::unique_ptr<Solver> Inner);

/// Reference solver for tests: enumerates all assignments. Requires the
/// total number of variable bits in the query to be at most ~24.
std::unique_ptr<Solver> createBruteForceSolver(ExprContext &Ctx);

/// The default production stack: independence -> cache -> core.
std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx,
                                            uint64_t ConflictBudget = 0);

/// Global counters shared by all layers (reset between experiments).
SolverQueryStats &solverStats();

} // namespace symmerge

#endif // SYMMERGE_SOLVER_SOLVER_H
