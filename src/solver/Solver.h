//===- Solver.h - Constraint solver interface -------------------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface used by the symbolic execution engine. A Query is a
/// conjunction of width-1 constraints (the path condition). Solvers are
/// stacked in layers, mirroring KLEE's architecture:
///
///   IndependenceSolver -> SimplifyingSolver -> CachingSolver -> CoreSolver
///
/// Two entry points exist:
///
///  - checkSat(Query, Model): the classic one-shot API. Each layer may
///    absorb, split, or rewrite the query before it reaches the bitblast
///    + CDCL core. Internally this is a thin shim over a one-shot
///    session.
///
///  - openSession(): the incremental API this subsystem is designed
///    around. A SolverSession holds solver state across queries:
///    constraints asserted once stay encoded, and checkSatAssuming()
///    decides a hypothesis against them without re-encoding anything
///    already seen. The engine opens one session per branch point,
///    asserts the path condition once, and decides both branch polarities
///    as assumption queries — the shared prefix is Tseitin-encoded at
///    most once and the CDCL core keeps its learnt clauses and heuristic
///    state between the two checks. Sessions return a structured
///    SolverResponse carrying the verdict, the model, the failed
///    assumptions, and the encode/solve split of the time spent.
///
/// The engine's `follow` feasibility checks (Algorithm 1) and test-case
/// generation all go through this interface, and the per-query counters
/// here are the measured quantity that QCE estimates statically.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_SOLVER_SOLVER_H
#define SYMMERGE_SOLVER_SOLVER_H

#include "expr/ExprContext.h"
#include "expr/ExprEval.h"

#include <memory>
#include <vector>

namespace symmerge {

/// A satisfiability query: the conjunction of `Constraints`.
struct Query {
  std::vector<ExprRef> Constraints;

  Query() = default;
  explicit Query(std::vector<ExprRef> Cs) : Constraints(std::move(Cs)) {}

  /// Returns this query extended with one more conjunct.
  Query withConstraint(ExprRef E) const {
    Query Q(*this);
    Q.Constraints.push_back(E);
    return Q;
  }
};

enum class SolverResult {
  Sat,
  Unsat,
  Unknown, ///< Resource limit hit; the engine treats this conservatively.
};

/// Aggregate counters across the whole solver stack.
struct SolverQueryStats {
  uint64_t Queries = 0;        ///< checkSat calls at the top layer.
  uint64_t CoreQueries = 0;    ///< Queries that reached the SAT core.
  uint64_t CacheHits = 0;
  uint64_t SatResults = 0;
  uint64_t UnsatResults = 0;
  double CoreSolveSeconds = 0; ///< Wall time spent inside the SAT core
                               ///< (encoding + search).
  // Session API counters.
  uint64_t SessionsOpened = 0;     ///< openSession calls (any kind).
  uint64_t SessionQueries = 0;     ///< Checks issued through sessions.
  uint64_t AssumptionQueries = 0;  ///< checkSatAssuming checks.
  uint64_t EncodeCacheHits = 0;    ///< Expr nodes reused from a session's
                                   ///< persistent Tseitin encoding.
  uint64_t EncodeNodesLowered = 0; ///< Expr nodes freshly encoded.
  double EncodeSeconds = 0;        ///< Wall time Tseitin-encoding in the
                                   ///< core (subset of CoreSolveSeconds).
  // Session-level verdict cache (shared by all native sessions of one
  // core solver; keyed by normalized asserted-prefix + assumptions).
  uint64_t VerdictCacheHits = 0;   ///< Checks answered without the core.
  uint64_t VerdictCacheMisses = 0; ///< Checks that went to the core.
  uint64_t VerdictCacheEvictions = 0; ///< Entries dropped by the
                                      ///< generation-LRU capacity bound.
  // Per-group sub-sessions (solve-level independence slicing).
  uint64_t GroupSubSessions = 0; ///< Group sub-instances lazily created.
  uint64_t GroupMerges = 0;      ///< Sub-instances folded into another
                                 ///< because a constraint or assumption
                                 ///< bridged their groups.
  uint64_t GroupSlicedSolves = 0; ///< Core checks that encoded/solved a
                                  ///< proper subset of the asserted
                                  ///< constraints (the reachable groups).
  // Model-reuse subsystem (shared counterexample cache). Hits/misses
  // are CACHE-level (counted inside ModelCache::probe, whoever the
  // prober is); EvalSatShortcuts is SESSION-level — checks a hit
  // answered without the SAT core. Today sessions are the only probers
  // so shortcuts == hits; the counters diverge as other probers appear.
  uint64_t ModelCacheHits = 0;   ///< Probes that found a cached model
                                 ///< validated by concrete evaluation.
  uint64_t ModelCacheMisses = 0; ///< Probes with no validating candidate.
  uint64_t EvalSatShortcuts = 0; ///< Session checks answered SAT by a
                                 ///< validated cached model — evaluation
                                 ///< cost, zero SAT calls.
  uint64_t ModelCacheEvictions = 0; ///< Index entries dropped by the
                                    ///< cache's generation-LRU bound.
  // Refutation-reuse subsystem (UNSAT-core subsumption cache + poison
  // cache + per-query budgets). Core-cache hits/misses are CACHE-level
  // (counted inside CoreCache::probe); a hit answers the whole check
  // UNSAT with zero SAT calls, symmetric with EvalSatShortcuts.
  uint64_t CoreCacheHits = 0;   ///< Probes subsumed by a cached core.
  uint64_t CoreCacheMisses = 0; ///< Probes with no subsuming core.
  uint64_t CoreSubsumptions = 0; ///< Hits whose core was a STRICT subset
                                 ///< of the probe set (reuse across
                                 ///< different queries, not just repeats).
  uint64_t CoreCacheEvictions = 0; ///< Index entries dropped by the
                                   ///< cache's generation-LRU bound.
  // Probe-filter counters (the O(1) signature pre-filters of the cache
  // probe paths; see CoreCacheOptions::SignatureFilter and
  // ModelCacheOptions::SignatureFilter).
  uint64_t CoreCacheProbeVisits = 0; ///< Candidate cores reaching the
                                     ///< sorted inclusion scan (the work
                                     ///< the filters exist to avoid).
  uint64_t CoreCacheSigSkips = 0;   ///< Candidates rejected by the 64-bit
                                    ///< footprint signature alone.
  uint64_t CoreCacheShardSkips = 0; ///< Probe ids rejected by a shard's
                                    ///< Bloom filter before its lock.
  uint64_t ModelCacheSigSkips = 0;  ///< Model candidates rejected by the
                                    ///< variable-footprint signature
                                    ///< before evaluation gathering.
  uint64_t PoisonedQueries = 0; ///< Checks refused because their key was
                                ///< poisoned by an earlier blow-up.
  uint64_t PoisonedInserts = 0; ///< Keys newly poisoned (a solve blew a
                                ///< conflict/wall/memory budget).
  uint64_t PoisonCacheEvictions = 0; ///< Poisoned keys dropped by the
                                     ///< generation-LRU bound.
  uint64_t UnknownsObserved = 0; ///< Session checks that returned
                                 ///< Unknown (fresh budget blow-ups and
                                 ///< poison refusals alike).

  /// Folds \p O into this (the parallel engine merges each worker's
  /// thread-local counters into the run totals at shutdown).
  SolverQueryStats &operator+=(const SolverQueryStats &O);
  /// Componentwise subtraction (engines diff a baseline snapshot).
  SolverQueryStats &operator-=(const SolverQueryStats &O);
};

/// Structured result of one session check.
struct SolverResponse {
  SolverResult Result = SolverResult::Unknown;
  /// On Sat, and only when the check requested a model: an assignment of
  /// every variable occurring in the asserted constraints + assumptions.
  VarAssignment Model;
  /// On Unsat of a checkSatAssuming: the subset of the assumptions the
  /// solver used to refute the query (empty when the asserted constraints
  /// are unsatisfiable by themselves). Fallback sessions over one-shot
  /// layers over-approximate this with the full assumption set.
  std::vector<ExprRef> FailedAssumptions;
  double EncodeSeconds = 0; ///< Time Tseitin-encoding new expression nodes.
  double SolveSeconds = 0;  ///< Time deciding (CDCL search / layer work).

  bool isSat() const { return Result == SolverResult::Sat; }
  bool isUnsat() const { return Result == SolverResult::Unsat; }
};

/// Growth diagnostics of one session, driving eviction policies: a
/// long-lived (per-state) session accumulates permanently disabled guard
/// literals and their clauses with every pop, and the owner retires the
/// session for a fresh one once the garbage passes a watermark.
struct SessionHealth {
  size_t AssertedConstraints = 0; ///< Constraints currently asserted.
  size_t LiveScopes = 0;          ///< push() scopes currently open.
  size_t RetiredScopes = 0;       ///< pop()s issued over the lifetime —
                                  ///< each left a dead guard behind.
  size_t ClauseCount = 0; ///< Problem clauses in the SAT core (native
                          ///< sessions only; 0 for fallbacks).
  size_t LearntCount = 0; ///< Learnt clauses in the SAT core.
  size_t MemoryBytes = 0; ///< Byte-accurate clause-database footprint:
                          ///< clause headers + literal arrays + watcher
                          ///< arrays (native sessions only).
  size_t PurgedClauses = 0; ///< Clauses garbage-collected because a dead
                            ///< scope guard (or another root-level fact)
                            ///< satisfies them forever.
  size_t Groups = 0; ///< Live per-group sub-instances (grouped native
                     ///< sessions only; 0 for monolithic and fallback
                     ///< sessions). A session that degenerated to one
                     ///< connected constraint graph reports 1.
};

/// An incremental solving session: constraints are asserted once and stay
/// encoded; hypotheses are decided against them via assumptions. Obtained
/// from Solver::openSession(); one session is intended to span queries
/// that share a constraint prefix — a branch point, a bounds-check pair,
/// or (the per-state lifetime) every check site along one execution
/// state's exploration subtree.
///
/// push()/pop() scope assertions: constraints asserted after a push() are
/// retracted by the matching pop(). Native (incremental-core) sessions
/// implement this with guard literals, so popping never re-encodes.
class SolverSession {
public:
  explicit SolverSession(ExprContext &Ctx) : Ctx(Ctx) {}
  virtual ~SolverSession();

  /// Opens a new assertion scope.
  virtual void push() = 0;
  /// Retracts every constraint asserted since the matching push().
  virtual void pop() = 0;
  /// Asserts the width-1 constraint \p E for the rest of the current
  /// scope's lifetime.
  virtual void assert_(ExprRef E) = 0;

  /// Decides the conjunction of the asserted constraints.
  virtual SolverResponse checkSat(bool WantModel = false) = 0;

  /// Decides asserted-constraints && all of \p Assumptions without
  /// asserting them: the session state is unchanged afterwards.
  virtual SolverResponse
  checkSatAssuming(const std::vector<ExprRef> &Assumptions,
                   bool WantModel = false) = 0;

  SolverResponse checkSatAssuming(ExprRef Assumption,
                                  bool WantModel = false) {
    return checkSatAssuming(std::vector<ExprRef>{Assumption}, WantModel);
  }

  /// Growth diagnostics for eviction policies; fallback sessions report
  /// only the scope/constraint counts.
  virtual SessionHealth health() const { return {}; }

  /// Overrides the per-SAT-call conflict budget for subsequent checks on
  /// this session (0 restores the solver's configured budget). Sessions
  /// whose core has no budget support ignore the override — it can only
  /// RELAX a check toward completeness (a larger budget turns Unknown
  /// into an exact verdict), never change an exact answer, so callers
  /// (the engine's adaptive per-site budgets) need not know which
  /// session kind they hold.
  virtual void setConflictBudgetOverride(uint64_t Conflicts) {
    (void)Conflicts;
  }

  /// True if asserted && E is satisfiable (Unknown counts as true: the
  /// engine never prunes on a resource limit).
  bool mayBeTrue(ExprRef E);
  /// True if asserted && !E is satisfiable.
  bool mayBeFalse(ExprRef E);
  /// True if E holds on every solution of the asserted constraints.
  bool mustBeTrue(ExprRef E) { return !mayBeFalse(E); }

protected:
  ExprContext &Ctx;
};

/// Caller-provided promises and knobs for a session.
struct SessionOptions {
  /// The caller promises that the conjunction of the asserted constraints
  /// stays satisfiable at every check (the engine's path-condition
  /// invariant: a constraint is only added after a feasibility check
  /// passed). Native sessions use the promise to slice verdict-cache
  /// keys down to the constraint group variable-reachable from the
  /// assumption — sound exactly under this promise, and it multiplies
  /// cross-state hit rates the way IndependenceSolver multiplies
  /// one-shot cache hits. Leave false for arbitrary constraint sets.
  bool FeasiblePrefix = false;
};

/// Abstract solver. Implementations must be deterministic.
class Solver {
public:
  explicit Solver(ExprContext &Ctx) : Ctx(Ctx) {}
  virtual ~Solver();

  /// Decides the conjunction of \p Q. On Sat, fills \p Model (if non-null)
  /// with an assignment of every variable occurring in the query.
  virtual SolverResult checkSat(const Query &Q, VarAssignment *Model) = 0;

  /// Opens an incremental session on this solver. When the underlying
  /// core supports native incremental solving (see
  /// supportsNativeSessions()), the session holds a persistent SAT
  /// instance + encoding cache; otherwise a generic fallback session is
  /// returned that replays the asserted constraints as one-shot
  /// checkSat() queries through this solver (and thus still benefits
  /// from every layer above the core).
  virtual std::unique_ptr<SolverSession> openSession();

  /// openSession() with caller promises; implementations that cannot use
  /// the promises ignore them.
  virtual std::unique_ptr<SolverSession>
  openSession(const SessionOptions &Opts) {
    (void)Opts;
    return openSession();
  }

  /// True when openSession() yields a natively incremental session.
  /// Wrapper layers forward this from their inner solver.
  virtual bool supportsNativeSessions() const { return false; }

  /// True if `Q && E` is satisfiable (Unknown counts as true, keeping the
  /// engine sound-for-exploration: it never prunes on an Unknown).
  bool mayBeTrue(const Query &Q, ExprRef E);
  /// True if `Q && !E` is satisfiable.
  bool mayBeFalse(const Query &Q, ExprRef E);
  /// True if E holds on every solution of Q.
  bool mustBeTrue(const Query &Q, ExprRef E) { return !mayBeFalse(Q, E); }
  /// True if E is false on every solution of Q.
  bool mustBeFalse(const Query &Q, ExprRef E) { return !mayBeTrue(Q, E); }

  /// Produces a test-case assignment for a feasible path condition.
  /// Returns false if the query is unsatisfiable (or Unknown).
  bool getModel(const Query &Q, VarAssignment &Model);

  ExprContext &context() { return Ctx; }

protected:
  ExprContext &Ctx;
};

/// The session-level verdict cache: memoizes Sat/Unsat verdicts across
/// every native session of the core solver(s) it is attached to. The map
/// is sharded (per-shard mutex) so the parallel engine's workers share
/// verdicts concurrently, and bounded by a generation-based LRU: each
/// shard stamps entries with an access generation and, past its slice of
/// MaxEntries, evicts the least-recently-stamped half. Opaque; create
/// with createVerdictCache() and attach via createCoreSolver()/
/// createDefaultSolver().
class SessionVerdictCache;

struct VerdictCacheOptions {
  /// Total entry bound across all shards; 0 = unbounded.
  size_t MaxEntries = 1u << 20;
  /// Concurrency shards (rounded up to a power of two).
  unsigned Shards = 16;
};

std::shared_ptr<SessionVerdictCache>
createVerdictCache(const VerdictCacheOptions &Opts = {});

/// Current entry count / LRU evictions of a cache (for stats and tests).
size_t verdictCacheSize(const SessionVerdictCache &Cache);
uint64_t verdictCacheEvictions(const SessionVerdictCache &Cache);

/// The model-reuse sibling of the verdict cache: a sharded concurrent
/// cache of satisfying assignments (see solver/ModelCache.h). Attached to
/// a core solver, native sessions probe it before a verdict-cache miss
/// pays for bit-blasting: a candidate model revalidated by concrete
/// evaluation answers SAT — with a model — at evaluation cost and zero
/// SAT calls, and every successful solve (including composed per-group
/// models) publishes its assignment back.
class ModelCache;

/// The refutation-reuse siblings (see solver/CoreCache.h and
/// solver/PoisonCache.h): a shared cache of minimized UNSAT cores —
/// probed after a verdict-cache miss, a cached core that is a subset of
/// the sliced assertion set proves UNSAT with zero SAT calls — and a
/// shared set of poisoned query keys whose solve blew a per-query budget
/// and is refused on re-entry with SolverResult::Unknown.
class CoreCache;
class PoisonCache;

/// Bitblasting solver: Tseitin-encodes the query and runs the CDCL core.
/// \p ConflictBudget bounds each SAT call (0 = unlimited).
/// \p IncrementalSessions selects what openSession() returns: a native
/// incremental session (persistent SAT instance + encoding cache), or —
/// when false, the measured fresh-instance baseline — a fallback session
/// that builds a fresh encoding per query.
/// \p VerdictCache layers a session-level verdict cache over the native
/// sessions: checks are keyed by (normalized asserted prefix, assumption
/// set) in a cache shared by every session this solver opens, so sibling
/// states produced by forking or merging hit each other's feasibility
/// verdicts — the cross-state sharing the one-shot CachingSolver provides
/// but native sessions would otherwise bypass.
/// \p GroupSessions selects the native session implementation: per-group
/// sub-sessions (an incremental union-find partitions the asserted
/// constraints into variable-connected groups, each with its own SAT
/// instance and encoding cache, so a check encodes and solves only the
/// groups its assumptions reach — solve-level independence slicing), or,
/// when false, the monolithic single-instance session kept as the
/// measurement baseline.
std::unique_ptr<Solver> createCoreSolver(ExprContext &Ctx,
                                         uint64_t ConflictBudget = 0,
                                         bool IncrementalSessions = true,
                                         bool VerdictCache = false,
                                         bool GroupSessions = true);

/// createCoreSolver with a caller-provided verdict cache, so several core
/// solvers — one per engine worker — share one concurrent cache and
/// cross-state sharing survives parallelism. \p Cache may be null.
/// \p Models optionally attaches a shared counterexample cache (see
/// ModelCache above); null disables model reuse.
std::unique_ptr<Solver>
createCoreSolver(ExprContext &Ctx, uint64_t ConflictBudget,
                 bool IncrementalSessions,
                 std::shared_ptr<SessionVerdictCache> Cache,
                 bool GroupSessions = true,
                 std::shared_ptr<ModelCache> Models = nullptr);

/// Full construction surface of a core solver. The positional overloads
/// above remain as conveniences and forward here; this is what the
/// driver uses — it carries the refutation-reuse tier and the per-query
/// budgets that the positional forms predate.
struct CoreSolverOptions {
  /// Per-SAT-call conflict bound (0 = unlimited). A blown budget returns
  /// Unknown and poisons the query key (when a poison cache is attached).
  uint64_t ConflictBudget = 0;
  /// Per-SAT-call wall-clock bound in seconds (0 = unlimited). Same
  /// Unknown + poison semantics as the conflict budget.
  double WallBudgetSeconds = 0;
  /// Poisons a query whose solve grew the session's SAT clause database
  /// by more than this many bytes (0 = unlimited). The completed solve's
  /// exact verdict is still returned and cached — only re-entry is
  /// fenced, so a memory hog is paid for at most once per key.
  uint64_t PoisonMemoryDeltaBytes = 0;
  bool IncrementalSessions = true;
  bool GroupSessions = true;
  std::shared_ptr<SessionVerdictCache> Verdicts; ///< Null disables.
  std::shared_ptr<ModelCache> Models;            ///< Null disables.
  std::shared_ptr<CoreCache> Cores;              ///< Null disables.
  std::shared_ptr<PoisonCache> Poison;           ///< Null disables.
};

std::unique_ptr<Solver> createCoreSolver(ExprContext &Ctx,
                                         CoreSolverOptions Opts);

/// Wraps \p Inner with a query-result cache.
std::unique_ptr<Solver> createCachingSolver(ExprContext &Ctx,
                                            std::unique_ptr<Solver> Inner);

/// Wraps \p Inner with KLEE-style equality substitution: constraints of
/// the form `var == constant` are substituted into the other constraints
/// before dispatch, concretizing them (and often refuting the query
/// without reaching the SAT core).
std::unique_ptr<Solver>
createSimplifyingSolver(ExprContext &Ctx, std::unique_ptr<Solver> Inner);

/// Wraps \p Inner with constraint-independence slicing: constraints that
/// share no variables (transitively) with the rest are solved separately.
std::unique_ptr<Solver> createIndependenceSolver(ExprContext &Ctx,
                                                 std::unique_ptr<Solver> Inner);

/// Reference solver for tests: enumerates all assignments. Requires the
/// total number of variable bits in the query to be at most ~24.
std::unique_ptr<Solver> createBruteForceSolver(ExprContext &Ctx);

/// The default production stack: independence -> simplify -> cache ->
/// core, with native incremental sessions and the session-level verdict
/// cache enabled.
std::unique_ptr<Solver> createDefaultSolver(ExprContext &Ctx,
                                            uint64_t ConflictBudget = 0);

/// Per-thread counters shared by all layers (reset between experiments).
/// Thread-local so worker threads never race: each engine worker's solver
/// stack counts into its own instance, and the engine folds the workers'
/// deltas into the run statistics at shutdown.
SolverQueryStats &solverStats();

} // namespace symmerge

#endif // SYMMERGE_SOLVER_SOLVER_H
