//===- Workloads.cpp - Mini-COREUTILS benchmark programs --------------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace symmerge;

// Shared prologue: symbolic argc plus the flattened symbolic argv buffer.
#define PROLOGUE                                                            \
  "  int argc = 0;\n"                                                       \
  "  char args[${NL}];\n"                                                   \
  "  make_symbolic(argc, \"argc\");\n"                                      \
  "  make_symbolic(args, \"args\");\n"                                      \
  "  assume(argc >= 0);\n"                                                  \
  "  assume(argc <= ${N});\n"

// Helper used by several workloads: bounded strlen of argument `a`.
#define ARG_LEN_HELPER                                                      \
  "int arg_len(char args[], int a) {\n"                                     \
  "  int n = 0;\n"                                                          \
  "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"                            \
  "    if (args[a * ${L} + i] == 0) { break; }\n"                           \
  "    n = n + 1;\n"                                                        \
  "  }\n"                                                                   \
  "  return n;\n"                                                           \
  "}\n"

// Helper: parse argument `a` as a decimal number; -1 on bad input.
#define PARSE_NUM_HELPER                                                    \
  "int parse_num(char args[], int a) {\n"                                   \
  "  int v = 0;\n"                                                          \
  "  int any = 0;\n"                                                        \
  "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"                            \
  "    char c = args[a * ${L} + i];\n"                                      \
  "    if (c == 0) { break; }\n"                                            \
  "    if (c < '0') { return 0 - 1; }\n"                                    \
  "    if (c > '9') { return 0 - 1; }\n"                                    \
  "    v = v * 10 + (c - '0');\n"                                           \
  "    any = 1;\n"                                                          \
  "    if (v > 100000) { return 0 - 1; }\n"                                 \
  "  }\n"                                                                   \
  "  if (any == 0) { return 0 - 1; }\n"                                     \
  "  return v;\n"                                                           \
  "}\n"

namespace {

// echo [-n] ARGS... — the paper's Figure 1 program.
const char *EchoSrc =
    "int is_dash_n(char args[], int a) {\n"
    "  return args[a * ${L} + 0] == '-' && args[a * ${L} + 1] == 'n'\n"
    "      && args[a * ${L} + 2] == 0;\n"
    "}\n"
    "void main() {\n" PROLOGUE
    "  int r = 1;\n"
    "  int arg = 0;\n"
    "  if (arg < argc) {\n"
    "    if (is_dash_n(args, 0)) { r = 0; arg = arg + 1; }\n"
    "  }\n"
    "  for (; arg < argc; arg = arg + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      if (args[arg * ${L} + i] == 0) { break; }\n"
    "      print(args[arg * ${L} + i]);\n"
    "    }\n"
    "  }\n"
    "  if (r) { print('\\n'); }\n"
    "}\n";

// seq [FIRST] LAST — print a bounded arithmetic sequence.
const char *SeqSrc =
    PARSE_NUM_HELPER
    "void main() {\n" PROLOGUE
    "  if (argc < 1) { print('U'); halt(); }\n"
    "  int first = 1;\n"
    "  int last = parse_num(args, 0);\n"
    "  if (argc >= 2) { first = last; last = parse_num(args, 1); }\n"
    "  if (first < 0) { print('B'); halt(); }\n"
    "  if (last < 0) { print('B'); halt(); }\n"
    "  int printed = 0;\n"
    "  for (int cur = first; cur <= last; cur = cur + 1) {\n"
    "    print(cur);\n"
    "    printed = printed + 1;\n"
    "    if (printed >= 16) { break; }\n"
    "  }\n"
    "}\n";

// sleep N... — the §5.4 case study: arguments sum into `seconds`, which
// stays live through validation, yet QCE merges the parsing states.
const char *SleepSrc =
    PARSE_NUM_HELPER
    "void main() {\n" PROLOGUE
    "  if (argc < 1) { print('U'); halt(); }\n"
    "  int seconds = 0;\n"
    "  int ok = 1;\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    int v = parse_num(args, a);\n"
    "    if (v < 0) { ok = 0; break; }\n"
    "    seconds = seconds + v;\n"
    "  }\n"
    "  if (ok == 0) { print('E'); halt(); }\n"
    "  if (seconds > 86400) { print('L'); halt(); }\n"
    "  if (seconds % 2 == 0) { print('e'); } else { print('o'); }\n"
    "  print('S');\n"
    "}\n";

// basename PATH — strip the directory prefix of the last argument.
const char *BasenameSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 1) { print('U'); halt(); }\n"
    "  int a = argc - 1;\n"
    "  int base = a * ${L};\n"
    "  int start = 0;\n"
    "  int len = 0;\n"
    "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "    char c = args[base + i];\n"
    "    if (c == 0) { break; }\n"
    "    len = len + 1;\n"
    "    if (c == '/') { start = i + 1; }\n"
    "  }\n"
    "  if (start >= len) { print('.'); halt(); }\n"
    "  for (int j = start; j < len; j = j + 1) {\n"
    "    print(args[base + j]);\n"
    "  }\n"
    "  print('\\n');\n"
    "}\n";

// link FILE1 FILE2 — validate both names; refuse identical ones.
const char *LinkSrc =
    ARG_LEN_HELPER
    "void main() {\n" PROLOGUE
    "  if (argc != 2) { print('U'); halt(); }\n"
    "  if (arg_len(args, 0) == 0) { print('E'); halt(); }\n"
    "  if (arg_len(args, 1) == 0) { print('E'); halt(); }\n"
    "  int same = 1;\n"
    "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "    if (args[i] != args[${L} + i]) { same = 0; break; }\n"
    "    if (args[i] == 0) { break; }\n"
    "  }\n"
    "  if (same) { print('S'); halt(); }\n"
    "  print('O');\n"
    "}\n";

// nice [-n ADJ] [CMD] — parse an adjustment, then run or report.
const char *NiceSrc =
    PARSE_NUM_HELPER
    "void main() {\n" PROLOGUE
    "  int adj = 10;\n"
    "  int cmd = 0;\n"
    "  if (argc >= 1) {\n"
    "    if (args[0] == '-' && args[1] == 'n' && args[2] == 0) {\n"
    "      if (argc < 2) { print('U'); halt(); }\n"
    "      adj = parse_num(args, 1);\n"
    "      if (adj < 0) { print('B'); halt(); }\n"
    "      if (adj > 19) { adj = 19; }\n"
    "      cmd = 2;\n"
    "    }\n"
    "  }\n"
    "  if (cmd >= argc) { print(adj); halt(); }\n"
    "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "    char c = args[cmd * ${L} + i];\n"
    "    if (c == 0) { break; }\n"
    "    print(c);\n"
    "  }\n"
    "}\n";

// paste A B ... — column-wise interleaving with tab separators.
const char *PasteSrc =
    ARG_LEN_HELPER
    "void main() {\n" PROLOGUE
    "  int maxlen = 0;\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    int l = arg_len(args, a);\n"
    "    if (l > maxlen) { maxlen = l; }\n"
    "  }\n"
    "  for (int i = 0; i < maxlen; i = i + 1) {\n"
    "    for (int a = 0; a < argc; a = a + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c != 0) { print(c); }\n"
    "      if (a + 1 < argc) { print('\\t'); }\n"
    "    }\n"
    "    print('\\n');\n"
    "  }\n"
    "}\n";

// pr — paginate: ';' ends a line, three lines per page.
const char *PrSrc =
    "void main() {\n" PROLOGUE
    "  int lines = 0;\n"
    "  int page = 1;\n"
    "  int col = 0;\n"
    "  print('P');\n"
    "  print(page);\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      if (c == ';') {\n"
    "        lines = lines + 1;\n"
    "        col = 0;\n"
    "        if (lines % 3 == 0) { page = page + 1; print('P'); print(page); }\n"
    "      } else {\n"
    "        col = col + 1;\n"
    "        if (col > 8) { print('!'); } else { print(c); }\n"
    "      }\n"
    "    }\n"
    "  }\n"
    "}\n";

// wc — character and word counts with a whitespace state machine.
const char *WcSrc =
    "void main() {\n" PROLOGUE
    "  int chars = 0;\n"
    "  int words = 0;\n"
    "  int inword = 0;\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      chars = chars + 1;\n"
    "      if (c == ' ') {\n"
    "        inword = 0;\n"
    "      } else {\n"
    "        if (inword == 0) { words = words + 1; }\n"
    "        inword = 1;\n"
    "      }\n"
    "    }\n"
    "    inword = 0;\n"
    "  }\n"
    "  print(chars);\n"
    "  print(words);\n"
    "}\n";

// cut -c FROM[-TO] STRING — single-digit column ranges.
const char *CutSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 2) { print('U'); halt(); }\n"
    "  char c0 = args[0];\n"
    "  if (c0 < '1') { print('B'); halt(); }\n"
    "  if (c0 > '9') { print('B'); halt(); }\n"
    "  int from = c0 - '0';\n"
    "  int to = from;\n"
    "  if (args[1] == '-') {\n"
    "    char c2 = args[2];\n"
    "    if (c2 < '1') { print('B'); halt(); }\n"
    "    if (c2 > '9') { print('B'); halt(); }\n"
    "    to = c2 - '0';\n"
    "  }\n"
    "  if (to < from) { print('B'); halt(); }\n"
    "  for (int i = from - 1; i < to; i = i + 1) {\n"
    "    if (i >= ${Lm1}) { break; }\n"
    "    char c = args[${L} + i];\n"
    "    if (c == 0) { break; }\n"
    "    print(c);\n"
    "  }\n"
    "}\n";

// tr FROM TO STRING — single-character translation.
const char *TrSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 3) { print('U'); halt(); }\n"
    "  char from = args[0];\n"
    "  char to = args[${L}];\n"
    "  if (from == 0) { print('B'); halt(); }\n"
    "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "    char c = args[2 * ${L} + i];\n"
    "    if (c == 0) { break; }\n"
    "    if (c == from) { print(to); } else { print(c); }\n"
    "  }\n"
    "}\n";

// yes [ARG] — bounded repetition of the first argument.
const char *YesSrc =
    "void main() {\n" PROLOGUE
    "  for (int k = 0; k < 3; k = k + 1) {\n"
    "    if (argc >= 1) {\n"
    "      for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "        char c = args[i];\n"
    "        if (c == 0) { break; }\n"
    "        print(c);\n"
    "      }\n"
    "    } else {\n"
    "      print('y');\n"
    "    }\n"
    "    print('\\n');\n"
    "  }\n"
    "}\n";

// cat [-n] ARGS... — concatenation with optional line numbering.
const char *CatSrc =
    "void main() {\n" PROLOGUE
    "  int number = 0;\n"
    "  int start = 0;\n"
    "  if (argc >= 1) {\n"
    "    if (args[0] == '-' && args[1] == 'n' && args[2] == 0) {\n"
    "      number = 1;\n"
    "      start = 1;\n"
    "    }\n"
    "  }\n"
    "  int line = 1;\n"
    "  if (number) { print(line); }\n"
    "  for (int a = start; a < argc; a = a + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      print(c);\n"
    "      if (c == ';') {\n"
    "        line = line + 1;\n"
    "        if (number) { print(line); }\n"
    "      }\n"
    "    }\n"
    "  }\n"
    "}\n";

// tsort — Kahn's algorithm over a 4-node graph encoded as char pairs.
const char *TsortSrc =
    "void main() {\n" PROLOGUE
    "  int indeg[4];\n"
    "  int adj[16];\n"
    "  for (int i = 0; i < 4; i = i + 1) { indeg[i] = 0; }\n"
    "  for (int i = 0; i < 16; i = i + 1) { adj[i] = 0; }\n"
    "  for (int i = 0; i + 1 < ${Lm1}; i = i + 2) {\n"
    "    char u = args[i];\n"
    "    if (u == 0) { break; }\n"
    "    char v = args[i + 1];\n"
    "    if (v == 0) { print('B'); halt(); }\n"
    "    if (u < 'a') { print('B'); halt(); }\n"
    "    if (u > 'd') { print('B'); halt(); }\n"
    "    if (v < 'a') { print('B'); halt(); }\n"
    "    if (v > 'd') { print('B'); halt(); }\n"
    "    int ui = u - 'a';\n"
    "    int vi = v - 'a';\n"
    "    if (adj[ui * 4 + vi] == 0) {\n"
    "      adj[ui * 4 + vi] = 1;\n"
    "      indeg[vi] = indeg[vi] + 1;\n"
    "    }\n"
    "  }\n"
    "  int done[4];\n"
    "  for (int i = 0; i < 4; i = i + 1) { done[i] = 0; }\n"
    "  int emitted = 0;\n"
    "  for (int round = 0; round < 4; round = round + 1) {\n"
    "    for (int u = 0; u < 4; u = u + 1) {\n"
    "      if (done[u] == 0 && indeg[u] == 0) {\n"
    "        done[u] = 1;\n"
    "        emitted = emitted + 1;\n"
    "        print('a' + u);\n"
    "        for (int v = 0; v < 4; v = v + 1) {\n"
    "          if (adj[u * 4 + v] != 0) { indeg[v] = indeg[v] - 1; }\n"
    "        }\n"
    "      }\n"
    "    }\n"
    "  }\n"
    "  assert(emitted <= 4, \"tsort emits each node at most once\");\n"
    "  if (emitted < 4) { print('C'); }\n"
    "}\n";

// join — emit the concatenation when the two key characters match.
const char *JoinSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 2) { print('U'); halt(); }\n"
    "  char k0 = args[0];\n"
    "  char k1 = args[${L}];\n"
    "  if (k0 == 0) { halt(); }\n"
    "  if (k1 == 0) { halt(); }\n"
    "  if (k0 == k1) {\n"
    "    print(k0);\n"
    "    for (int i = 1; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[i];\n"
    "      if (c == 0) { break; }\n"
    "      print(c);\n"
    "    }\n"
    "    for (int i = 1; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      print(c);\n"
    "    }\n"
    "  } else {\n"
    "    print('X');\n"
    "  }\n"
    "}\n";

// uniq — drop adjacent duplicate characters of the first argument.
const char *UniqSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 1) { print('U'); halt(); }\n"
    "  char prev = 0;\n"
    "  int count = 1;\n"
    "  for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "    char c = args[i];\n"
    "    if (c == 0) { break; }\n"
    "    if (c == prev) {\n"
    "      count = count + 1;\n"
    "    } else {\n"
    "      if (prev != 0) { print(prev); print(count); }\n"
    "      prev = c;\n"
    "      count = 1;\n"
    "    }\n"
    "  }\n"
    "  if (prev != 0) { print(prev); print(count); }\n"
    "}\n";

// comm — three-way classification of two sorted key characters.
const char *CommSrc =
    "void main() {\n" PROLOGUE
    "  if (argc < 2) { print('U'); halt(); }\n"
    "  int i = 0;\n"
    "  int j = 0;\n"
    "  for (int round = 0; round < ${Lm1} + ${Lm1}; round = round + 1) {\n"
    "    char a = args[i];\n"
    "    char b = args[${L} + j];\n"
    "    if (a == 0 && b == 0) { break; }\n"
    "    if (i >= ${Lm1}) { break; }\n"
    "    if (j >= ${Lm1}) { break; }\n"
    "    if (b == 0 || (a != 0 && a < b)) {\n"
    "      print('<'); print(a); i = i + 1;\n"
    "    } else {\n"
    "      if (a == 0 || b < a) {\n"
    "        print('>'); print(b); j = j + 1;\n"
    "      } else {\n"
    "        print('='); print(a); i = i + 1; j = j + 1;\n"
    "      }\n"
    "    }\n"
    "  }\n"
    "}\n";

// expand — turn tabs into two-space stops, tracking the output column.
const char *ExpandSrc =
    "void main() {\n" PROLOGUE
    "  int col = 0;\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      if (c == '\\t') {\n"
    "        print(' ');\n"
    "        col = col + 1;\n"
    "        while (col % 2 != 0) { print(' '); col = col + 1; }\n"
    "      } else {\n"
    "        print(c);\n"
    "        col = col + 1;\n"
    "        if (c == ';') { col = 0; }\n"
    "      }\n"
    "    }\n"
    "  }\n"
    "}\n";

// sum — a BSD-style rotating checksum over every argument byte.
const char *SumSrc =
    "void main() {\n" PROLOGUE
    "  int checksum = 0;\n"
    "  int bytes = 0;\n"
    "  for (int a = 0; a < argc; a = a + 1) {\n"
    "    for (int i = 0; i < ${Lm1}; i = i + 1) {\n"
    "      char c = args[a * ${L} + i];\n"
    "      if (c == 0) { break; }\n"
    "      checksum = (checksum >> 1) + ((checksum & 1) << 15);\n"
    "      checksum = (checksum + c) & 65535;\n"
    "      bytes = bytes + 1;\n"
    "    }\n"
    "  }\n"
    "  assert(checksum >= 0 && checksum <= 65535, \"checksum stays 16-bit\");\n"
    "  print(checksum);\n"
    "  print(bytes);\n"
    "}\n";

const std::vector<Workload> Registry = {
    {"echo", "print arguments, -n suppresses the newline (Figure 1)",
     EchoSrc},
    {"seq", "print a bounded arithmetic sequence", SeqSrc},
    {"sleep", "sum numeric arguments and validate (the §5.4 case study)",
     SleepSrc},
    {"basename", "strip the directory prefix of the last argument",
     BasenameSrc},
    {"link", "validate two file names, refuse identical ones", LinkSrc},
    {"nice", "parse -n ADJ and run or report", NiceSrc},
    {"paste", "column-wise interleaving with tabs", PasteSrc},
    {"pr", "paginate with three lines per page", PrSrc},
    {"wc", "character and word counts", WcSrc},
    {"cut", "select character columns FROM-TO", CutSrc},
    {"tr", "single-character translation", TrSrc},
    {"yes", "bounded repetition of the first argument", YesSrc},
    {"cat", "concatenate arguments with optional -n numbering", CatSrc},
    {"tsort", "topological sort of a 4-node graph with cycle detection",
     TsortSrc},
    {"join", "join two argument records on their key character", JoinSrc},
    {"uniq", "collapse adjacent duplicate characters with counts", UniqSrc},
    {"comm", "three-way merge walk over two sorted records", CommSrc},
    {"expand", "tab expansion with column tracking", ExpandSrc},
    {"sum", "BSD-style rotating checksum", SumSrc},
};

} // namespace

const std::vector<Workload> &symmerge::allWorkloads() { return Registry; }

const Workload *symmerge::findWorkload(std::string_view Name) {
  for (const Workload &W : Registry)
    if (Name == W.Name)
      return &W;
  return nullptr;
}

std::string symmerge::instantiateWorkload(const Workload &W, unsigned N,
                                          unsigned L) {
  assert(N >= 1 && L >= 2 && "workloads need at least one argument byte");
  std::string Src = W.Template;
  // Longer placeholders first so ${N} does not clobber ${NL}.
  Src = replaceAll(std::move(Src), "${Lm1}", std::to_string(L - 1));
  Src = replaceAll(std::move(Src), "${NL}", std::to_string(N * L));
  Src = replaceAll(std::move(Src), "${L}", std::to_string(L));
  Src = replaceAll(std::move(Src), "${N}", std::to_string(N));
  return Src;
}

CompileResult symmerge::compileWorkload(const Workload &W, unsigned N,
                                        unsigned L) {
  return compileMiniC(instantiateWorkload(W, N, L));
}
