//===- Workloads.h - Mini-COREUTILS benchmark programs ----------*- C++ -*-===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workloads: simplified COREUTILS written in MiniC,
/// mirroring the programs the paper measures (echo is the Figure 1
/// program; sleep is the §5.4 case study; link/nice/paste/pr are the
/// Figure 7 alpha-sweep subjects). Every program reads a symbolic `argc`
/// and a flattened symbolic argument buffer `args` of N arguments by L
/// bytes, the same "symbolic command line" harness KLEE used.
///
/// Templates carry `${N}`, `${L}`, `${NL}` (= N*L), and `${Lm1}` (= L-1)
/// placeholders; instantiateWorkload() substitutes concrete values so the
/// symbolic input size can be swept, as in Figures 5 and 6.
///
//===----------------------------------------------------------------------===//

#ifndef SYMMERGE_WORKLOADS_WORKLOADS_H
#define SYMMERGE_WORKLOADS_WORKLOADS_H

#include "lang/Lower.h"

#include <string>
#include <string_view>
#include <vector>

namespace symmerge {

/// A parameterized benchmark program.
struct Workload {
  const char *Name;
  const char *Description;
  const char *Template; ///< MiniC source with ${N}/${L}/${NL}/${Lm1}.
};

/// All registered workloads, in a stable order.
const std::vector<Workload> &allWorkloads();

/// Finds a workload by name; null if absent.
const Workload *findWorkload(std::string_view Name);

/// Substitutes the (N, L) parameters into the template.
std::string instantiateWorkload(const Workload &W, unsigned N, unsigned L);

/// Instantiates and compiles; a diagnostic here is an internal error.
CompileResult compileWorkload(const Workload &W, unsigned N, unsigned L);

} // namespace symmerge

#endif // SYMMERGE_WORKLOADS_WORKLOADS_H
