//===- bugfinder.cpp - Finding injected bugs with merged exploration ---------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Symbolic execution as a bug finder: a small "protocol parser" with two
/// injected bugs — an assertion violation reachable only through a
/// specific header sequence, and an out-of-bounds array access on an
/// unvalidated length field. Shows that QCE-merged exploration finds the
/// same bugs as plain exploration (merging groups paths, it never prunes
/// them) while visiting far fewer states, and that every bug report comes
/// with a concrete, replayable input.
///
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/Replay.h"
#include "lang/Lower.h"

#include <cstdio>

using namespace symmerge;

static const char *Parser = R"(
// A toy packet format: [magic0 magic1 type len payload...].
void main() {
  char pkt[12];
  make_symbolic(pkt, "pkt");

  if (pkt[0] != 'S' || pkt[1] != 'M') { print('R'); halt(); } // Bad magic.

  char type = pkt[2];
  int len = pkt[3];

  int checksum = 0;
  if (type == 1) {
    // Bug 1: len is trusted; pkt has 12 cells but len can reach 255.
    for (int i = 0; i < len; i++) {
      checksum = checksum + pkt[4 + i];
    }
  } else {
    if (type == 2) {
      // Control frame: fixed 4-byte payload.
      for (int i = 0; i < 4; i++) { checksum = checksum + pkt[4 + i]; }
    } else {
      print('U');
      halt();
    }
  }

  // Bug 2: the "impossible" checksum the developer asserted away.
  assert(checksum != 510 || type != 2, "checksum collision handled");
  print(checksum);
}
)";

static void report(const char *Label, const Module &M,
                   SymbolicRunner &Runner, const RunResult &R) {
  std::printf("%s: %llu states completed, %llu merges, %llu bug reports\n",
              Label,
              static_cast<unsigned long long>(R.Stats.CompletedStates),
              static_cast<unsigned long long>(R.Stats.Merges),
              static_cast<unsigned long long>(R.bugCount()));
  for (const TestCase &T : R.Tests) {
    if (!T.isBug())
      continue;
    const char *Kind =
        T.Kind == TestKind::OutOfBounds ? "out-of-bounds" : "assertion";
    // Reconstruct the packet bytes from the model for display.
    std::printf("  %-13s", Kind);
    std::printf(" pkt = [");
    for (int I = 0; I < 12; ++I) {
      uint64_t B = T.Inputs.get(
          Runner.context().mkVar("pkt[" + std::to_string(I) + "]", 8));
      std::printf("%s%llu", I ? " " : "", static_cast<unsigned long long>(B));
    }
    std::printf("]");
    ReplayResult RR = replayTest(M, Runner.context(), T);
    bool Confirmed =
        (T.Kind == TestKind::OutOfBounds &&
         RR.K == ReplayResult::Kind::OutOfBounds) ||
        (T.Kind == TestKind::AssertFailure &&
         RR.K == ReplayResult::Kind::AssertFailure);
    std::printf("  replay: %s\n", Confirmed ? "confirmed" : "MISMATCH");
  }
}

int main() {
  CompileResult CR = compileMiniC(Parser);
  if (!CR.ok()) {
    for (const Diagnostic &D : CR.Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return 1;
  }

  // Plain exploration.
  {
    SymbolicRunner::Config C;
    C.Engine.MaxSeconds = 20;
    SymbolicRunner Runner(*CR.M, C);
    RunResult R = Runner.run();
    report("plain    ", *CR.M, Runner, R);
  }
  // QCE + DSM exploration finds the same bugs with fewer states.
  {
    SymbolicRunner::Config C;
    C.Merge = SymbolicRunner::MergeMode::QCE;
    C.UseDSM = true;
    C.Driving = SymbolicRunner::Strategy::Coverage;
    C.Engine.MaxSeconds = 20;
    SymbolicRunner Runner(*CR.M, C);
    RunResult R = Runner.run();
    report("dsm+qce  ", *CR.M, Runner, R);
  }
  return 0;
}
