//===- echo_qce.cpp - The paper's Figure 1 example, end to end ---------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Walks through the paper's running example (§3.1/§3.2): the simplified
/// echo utility. Shows
///
///   1. the QCE annotations — Qt and Qadd per variable at each block — and
///      the resulting hot sets,
///   2. how exploration cost compares across no merging, merge-everything,
///      and QCE-selective merging,
///   3. the §5.4 "sleep" effect: states whose differing variable is
///      symbolic still merge under QCE.
///
//===----------------------------------------------------------------------===//

#include "analysis/QCE.h"
#include "core/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace symmerge;

static void runMode(const Module &M, const char *Label,
                    SymbolicRunner::MergeMode Mode,
                    SymbolicRunner::Strategy Strat) {
  SymbolicRunner::Config C;
  C.Merge = Mode;
  C.Driving = Strat;
  C.Engine.MaxSeconds = 20;
  C.Engine.TrackExactPaths = true;
  SymbolicRunner Runner(M, C);
  RunResult R = Runner.run();
  std::printf("  %-12s states=%4llu merges=%3llu solver-queries=%5llu "
              "paths=%llu wall=%.3fs\n",
              Label,
              static_cast<unsigned long long>(R.Stats.CompletedStates),
              static_cast<unsigned long long>(R.Stats.Merges),
              static_cast<unsigned long long>(R.Stats.SolverQueries),
              static_cast<unsigned long long>(R.Stats.ExactPathsCompleted),
              R.Stats.WallSeconds);
}

int main() {
  const Workload *Echo = findWorkload("echo");
  constexpr unsigned N = 2, L = 4;
  CompileResult CR = compileWorkload(*Echo, N, L);
  if (!CR.ok())
    return 1;
  const Function *Main = CR.M->mainFunction();

  std::printf("== The paper's echo example (N=%u args x L=%u bytes) ==\n\n",
              N, L);

  // 1. QCE annotations, as the paper's §3.2 walkthrough computes them.
  ProgramInfo PI(*CR.M);
  // The paper's §3.2 walkthrough regime: a mid-range alpha separates the
  // loop-controlling variable from the once-checked flag. (The paper's
  // worked example uses alpha=0.5 at kappa=1; the experiments run at
  // alpha=1e-12, where only query-free variables are cold.)
  QCEParams Params;
  Params.Alpha = 0.4;
  Params.Kappa = 4;
  QCEAnalysis QCE(PI, Params);

  std::printf("QCE annotations at loop-relevant blocks (alpha=%g, beta=%g, "
              "kappa=%u):\n",
              Params.Alpha, Params.Beta, Params.Kappa);
  int Arg = Main->findLocal("arg");
  int RVar = Main->findLocal("r");
  for (const auto &BB : Main->blocks()) {
    // Report at loop headers — the merge points that matter.
    if (BB->name().find("head") == std::string::npos)
      continue;
    double Qt = QCE.qtAt(BB.get());
    std::printf("  %-12s Qt=%8.3f  Qadd(arg)=%8.3f%s  Qadd(r)=%8.3f%s\n",
                BB->name().c_str(), Qt, QCE.qaddAt(BB.get(), Arg),
                QCE.isHot(BB.get(), Arg, Qt) ? " [hot]" : "      ",
                QCE.qaddAt(BB.get(), RVar),
                QCE.isHot(BB.get(), RVar, Qt) ? " [hot]" : "      ");
  }
  std::printf("Paper's insight: `arg` (feeds loop bounds and array "
              "indices) is hot;\n`r` (checked once at the end) is not.\n\n");

  // 2. The merging trade-off on the full program.
  std::printf("Exhaustive exploration:\n");
  runMode(*CR.M, "no-merge", SymbolicRunner::MergeMode::None,
          SymbolicRunner::Strategy::Random);
  runMode(*CR.M, "merge-all", SymbolicRunner::MergeMode::All,
          SymbolicRunner::Strategy::Topological);
  runMode(*CR.M, "qce", SymbolicRunner::MergeMode::QCE,
          SymbolicRunner::Strategy::Topological);
  std::printf("\nAll three explore the same feasible paths; they differ in "
              "how many states\nand solver queries that takes (the paper's "
              "central trade-off).\n\n");

  // 3. The sleep effect (§5.4): symbolic differences merge under QCE.
  const Workload *Sleep = findWorkload("sleep");
  CompileResult SR = compileWorkload(*Sleep, 2, 4);
  if (!SR.ok())
    return 1;
  std::printf("The §5.4 sleep case study (argument parsing sums into a "
              "live symbolic\nvariable; QCE still merges the parsing "
              "states):\n");
  runMode(*SR.M, "no-merge", SymbolicRunner::MergeMode::None,
          SymbolicRunner::Strategy::Random);
  runMode(*SR.M, "qce", SymbolicRunner::MergeMode::QCE,
          SymbolicRunner::Strategy::Topological);
  return 0;
}
