//===- coverage_hunt.cpp - Coverage-oriented search with and without DSM -----===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates §4/§5.5: under a fixed budget with a coverage-oriented
/// search strategy, static state merging fights the search goal (it must
/// follow the topological order), while dynamic state merging leaves the
/// strategy in control and still merges by fast-forwarding lagging
/// states.
///
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace symmerge;

namespace {

struct Outcome {
  double Coverage;
  RunResult R;
};

Outcome run(const Module &M, SymbolicRunner::MergeMode Mode, bool DSM,
            SymbolicRunner::Strategy Strat, uint64_t StepBudget) {
  SymbolicRunner::Config C;
  C.Merge = Mode;
  C.UseDSM = DSM;
  C.Driving = Strat;
  C.Engine.MaxSteps = StepBudget;
  C.Engine.MaxSeconds = 30;
  C.Engine.CollectTests = false;
  SymbolicRunner Runner(M, C);
  Outcome O;
  O.R = Runner.run();
  O.Coverage = Runner.coverage().statementCoverage();
  return O;
}

} // namespace

int main() {
  // A budget small enough that exploration stays incomplete: the regime
  // where the search strategy's priorities matter.
  constexpr uint64_t Budget = 900;
  const char *Tool = "pr";
  constexpr unsigned N = 4, L = 8;

  const Workload *W = findWorkload(Tool);
  CompileResult CR = compileWorkload(*W, N, L);
  if (!CR.ok())
    return 1;

  std::printf("== Incomplete exploration of '%s' (N=%u, L=%u), budget %llu "
              "instructions ==\n\n",
              Tool, N, L, static_cast<unsigned long long>(Budget));
  std::printf("%-28s %10s %10s %10s %8s\n", "configuration", "coverage",
              "paths", "merges", "ff");

  Outcome Plain = run(*CR.M, SymbolicRunner::MergeMode::None, false,
                      SymbolicRunner::Strategy::Coverage, Budget);
  Outcome Ssm = run(*CR.M, SymbolicRunner::MergeMode::QCE, false,
                    SymbolicRunner::Strategy::Topological, Budget);
  Outcome Dsm = run(*CR.M, SymbolicRunner::MergeMode::QCE, true,
                    SymbolicRunner::Strategy::Coverage, Budget);

  auto Row = [](const char *Name, const Outcome &O) {
    std::printf("%-28s %9.1f%% %10.0f %10llu %8llu\n", Name,
                100 * O.Coverage, O.R.Stats.CompletedMultiplicity,
                static_cast<unsigned long long>(O.R.Stats.Merges),
                static_cast<unsigned long long>(
                    O.R.Stats.FastForwardSelections));
  };
  Row("plain + coverage search", Plain);
  Row("SSM+QCE (topological)", Ssm);
  Row("DSM+QCE + coverage search", Dsm);

  std::printf("\nExpected shape (paper Figure 8): SSM sacrifices coverage "
              "to merge;\nDSM keeps roughly the baseline's coverage while "
              "exploring more paths.\n");
  if (Dsm.R.Stats.FastForwardSelections) {
    std::printf("DSM merged %llu of %llu fast-forwarded states (paper "
                "§5.5: 69%%).\n",
                static_cast<unsigned long long>(
                    Dsm.R.Stats.FastForwardMerges),
                static_cast<unsigned long long>(
                    Dsm.R.Stats.FastForwardSelections));
  }
  return 0;
}
