//===- quickstart.cpp - Five-minute tour of the SymMerge API -----------------===//
//
// Part of SymMerge. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: compile a MiniC program, symbolically execute it, and use
/// the generated test cases — including replaying a discovered bug.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Driver.h"
#include "core/Replay.h"
#include "lang/Lower.h"

#include <cstdio>

using namespace symmerge;

// A small program with symbolic input and a (deliberate) corner-case bug:
// the discount computation asserts a property that fails for one input.
static const char *Program = R"(
int clamp(int v, int lo, int hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

void main() {
  int amount = 0;
  make_symbolic(amount, "amount");
  assume(amount >= 0 && amount <= 1000);

  int discount = 0;
  if (amount >= 100) { discount = 10; }
  if (amount >= 500) { discount = 25; }
  if (amount == 777) { discount = 100; } // Lucky-number promo.

  int charged = amount - amount * discount / 100;
  charged = clamp(charged, 0, 1000);

  // "No discounted price may round to zero unless it was free."
  assert(charged > 0 || amount == 0, "paid customers pay something");
  print(charged);
}
)";

int main() {
  // 1. Compile MiniC to the IR.
  CompileResult CR = compileMiniC(Program);
  if (!CR.ok()) {
    for (const Diagnostic &D : CR.Diags)
      std::fprintf(stderr, "error: %s\n", D.str().c_str());
    return 1;
  }

  // 2. Configure the engine: QCE-selective dynamic state merging over a
  //    coverage-oriented search, the paper's headline configuration.
  SymbolicRunner::Config Config;
  Config.Merge = SymbolicRunner::MergeMode::QCE;
  Config.UseDSM = true;
  Config.Driving = SymbolicRunner::Strategy::Coverage;
  Config.Engine.MaxSeconds = 10;

  SymbolicRunner Runner(*CR.M, Config);
  RunResult R = Runner.run();

  // 3. Inspect the results.
  std::printf("explored: %llu instructions, %llu forks, %llu merges, "
              "%zu tests (%llu bugs)\n",
              static_cast<unsigned long long>(R.Stats.Steps),
              static_cast<unsigned long long>(R.Stats.Forks),
              static_cast<unsigned long long>(R.Stats.Merges),
              R.Tests.size(),
              static_cast<unsigned long long>(R.bugCount()));

  ExprRef Amount = Runner.context().mkVar("amount", 64);
  for (const TestCase &T : R.Tests) {
    long long V = static_cast<long long>(T.Inputs.get(Amount));
    if (T.isBug()) {
      std::printf("bug: \"%s\" with amount = %lld\n", T.Message.c_str(), V);
      // 4. Replay the bug concretely to confirm it is real.
      ReplayResult RR = replayTest(*CR.M, Runner.context(), T);
      std::printf("     replay => %s\n",
                  RR.K == ReplayResult::Kind::AssertFailure
                      ? "assertion failed (confirmed)"
                      : "unexpected outcome (engine bug!)");
    } else {
      std::printf("test: amount = %-5lld (a complete path)\n", V);
    }
  }
  return 0;
}
